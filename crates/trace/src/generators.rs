//! Seeded synthetic GTBW trace generators.
//!
//! The paper's evaluation drives its testbed with FCC Measuring Broadband
//! America throughput traces. That corpus is not bundled here; instead these
//! generators synthesize piecewise-constant bandwidth processes with the same
//! ranges and qualitative structure (multi-timescale variation, occasional
//! regime shifts, bounded support). Every generator is deterministic given
//! `(config, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{BandwidthTrace, Quantizer};

/// A source of bandwidth traces.
pub trait TraceGenerator {
    /// Generates a trace of at least `duration_s` seconds using `seed`.
    fn generate(&self, duration_s: f64, seed: u64) -> BandwidthTrace;

    /// Generates `count` traces with consecutive seeds starting at `base_seed`.
    fn generate_batch(&self, duration_s: f64, base_seed: u64, count: usize) -> Vec<BandwidthTrace> {
        (0..count)
            .map(|i| self.generate(duration_s, base_seed.wrapping_add(i as u64)))
            .collect()
    }
}

/// A constant-bandwidth trace (used for controlled experiments such as the
/// paper's Figure 2(c) / Figure 5 payload sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantTrace {
    /// The constant bandwidth in Mbps.
    pub bandwidth_mbps: f64,
}

impl ConstantTrace {
    /// Creates a constant generator at `bandwidth_mbps`.
    pub fn new(bandwidth_mbps: f64) -> Self {
        assert!(bandwidth_mbps >= 0.0 && bandwidth_mbps.is_finite());
        Self { bandwidth_mbps }
    }
}

impl TraceGenerator for ConstantTrace {
    fn generate(&self, duration_s: f64, _seed: u64) -> BandwidthTrace {
        BandwidthTrace::constant(self.bandwidth_mbps, duration_s)
    }
}

/// A square wave alternating between two bandwidth levels — the bandwidth
/// process assumed by the preliminary workshop paper the authors cite
/// ([39] in the paper), kept here as a stress test and ablation workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SquareWave {
    /// Low level in Mbps.
    pub low_mbps: f64,
    /// High level in Mbps.
    pub high_mbps: f64,
    /// Time spent at each level before switching, in seconds.
    pub half_period_s: f64,
    /// Interval width of the generated segments, in seconds.
    pub delta_s: f64,
}

impl SquareWave {
    /// Creates a square-wave generator.
    pub fn new(low_mbps: f64, high_mbps: f64, half_period_s: f64) -> Self {
        assert!(low_mbps >= 0.0 && high_mbps >= low_mbps);
        assert!(half_period_s > 0.0);
        Self {
            low_mbps,
            high_mbps,
            half_period_s,
            delta_s: 5.0,
        }
    }
}

impl TraceGenerator for SquareWave {
    fn generate(&self, duration_s: f64, seed: u64) -> BandwidthTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        // Random phase so different seeds are not identical.
        let phase: f64 = rng.gen_range(0.0..(2.0 * self.half_period_s));
        let n = (duration_s / self.delta_s).ceil().max(1.0) as usize;
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 * self.delta_s + phase;
                if ((t / self.half_period_s).floor() as i64) % 2 == 0 {
                    self.high_mbps
                } else {
                    self.low_mbps
                }
            })
            .collect();
        BandwidthTrace::from_uniform(self.delta_s, &values).expect("square wave trace is valid")
    }
}

/// A bounded random walk: each δ-interval the bandwidth moves by a
/// zero-mean Gaussian step, reflected at the configured bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomWalk {
    /// Lower bound in Mbps.
    pub min_mbps: f64,
    /// Upper bound in Mbps.
    pub max_mbps: f64,
    /// Standard deviation of each step in Mbps.
    pub step_std_mbps: f64,
    /// Interval width in seconds.
    pub delta_s: f64,
}

impl RandomWalk {
    /// Creates a bounded random-walk generator over `[min_mbps, max_mbps]`.
    pub fn new(min_mbps: f64, max_mbps: f64, step_std_mbps: f64) -> Self {
        assert!(min_mbps >= 0.0 && max_mbps > min_mbps);
        assert!(step_std_mbps > 0.0);
        Self {
            min_mbps,
            max_mbps,
            step_std_mbps,
            delta_s: 5.0,
        }
    }
}

impl TraceGenerator for RandomWalk {
    fn generate(&self, duration_s: f64, seed: u64) -> BandwidthTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = (duration_s / self.delta_s).ceil().max(1.0) as usize;
        let mut current = rng.gen_range(self.min_mbps..=self.max_mbps);
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(current);
            let step = gaussian(&mut rng) * self.step_std_mbps;
            current = reflect(current + step, self.min_mbps, self.max_mbps);
        }
        BandwidthTrace::from_uniform(self.delta_s, &values).expect("random walk trace is valid")
    }
}

/// A Markov-modulated process on a quantized capacity grid with a
/// tridiagonal transition structure — exactly the generative model the
/// Veritas EHMM assumes, which makes it the natural well-specified workload
/// for validating inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkovModulated {
    /// Lower bound in Mbps.
    pub min_mbps: f64,
    /// Upper bound in Mbps.
    pub max_mbps: f64,
    /// Quantization step of the capacity grid in Mbps.
    pub epsilon_mbps: f64,
    /// Probability of staying in the current state at each δ transition.
    pub stay_probability: f64,
    /// Interval width in seconds.
    pub delta_s: f64,
}

impl MarkovModulated {
    /// Creates a Markov-modulated generator over `[min_mbps, max_mbps]`.
    pub fn new(min_mbps: f64, max_mbps: f64, epsilon_mbps: f64, stay_probability: f64) -> Self {
        assert!(min_mbps >= 0.0 && max_mbps > min_mbps);
        assert!(epsilon_mbps > 0.0);
        assert!((0.0..=1.0).contains(&stay_probability));
        Self {
            min_mbps,
            max_mbps,
            epsilon_mbps,
            stay_probability,
            delta_s: 5.0,
        }
    }
}

impl TraceGenerator for MarkovModulated {
    fn generate(&self, duration_s: f64, seed: u64) -> BandwidthTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let quantizer = Quantizer::new(self.epsilon_mbps, self.max_mbps);
        let lo_idx = quantizer.index_of(self.min_mbps);
        let hi_idx = quantizer.num_states() - 1;
        let n = (duration_s / self.delta_s).ceil().max(1.0) as usize;
        let mut idx = rng.gen_range(lo_idx..=hi_idx);
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(quantizer.value(idx));
            let roll: f64 = rng.gen();
            if roll >= self.stay_probability {
                // Move up or down one grid step, reflecting at the bounds.
                let up = rng.gen_bool(0.5);
                if up {
                    idx = if idx >= hi_idx {
                        hi_idx.saturating_sub(1).max(lo_idx)
                    } else {
                        idx + 1
                    };
                } else {
                    idx = if idx <= lo_idx {
                        (lo_idx + 1).min(hi_idx)
                    } else {
                        idx - 1
                    };
                }
            }
        }
        BandwidthTrace::from_uniform(self.delta_s, &values).expect("markov trace is valid")
    }
}

/// A regime-switching process: long dwell times in a small number of regimes
/// (e.g. "good WiFi", "congested peak hour"), with within-regime jitter.
/// Captures the slower, user-level variation present in broadband traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeSwitch {
    /// Mean bandwidth of each regime, in Mbps.
    pub regime_means_mbps: Vec<f64>,
    /// Within-regime jitter standard deviation, in Mbps.
    pub jitter_std_mbps: f64,
    /// Mean dwell time in a regime before switching, in seconds.
    pub mean_dwell_s: f64,
    /// Interval width in seconds.
    pub delta_s: f64,
}

impl RegimeSwitch {
    /// Creates a regime-switching generator with the given regime means.
    pub fn new(regime_means_mbps: Vec<f64>, jitter_std_mbps: f64, mean_dwell_s: f64) -> Self {
        assert!(!regime_means_mbps.is_empty());
        assert!(regime_means_mbps.iter().all(|&m| m >= 0.0));
        assert!(jitter_std_mbps >= 0.0);
        assert!(mean_dwell_s > 0.0);
        Self {
            regime_means_mbps,
            jitter_std_mbps,
            mean_dwell_s,
            delta_s: 5.0,
        }
    }
}

impl TraceGenerator for RegimeSwitch {
    fn generate(&self, duration_s: f64, seed: u64) -> BandwidthTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = (duration_s / self.delta_s).ceil().max(1.0) as usize;
        let switch_prob = (self.delta_s / self.mean_dwell_s).min(1.0);
        let mut regime = rng.gen_range(0..self.regime_means_mbps.len());
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let mean = self.regime_means_mbps[regime];
            let v = (mean + gaussian(&mut rng) * self.jitter_std_mbps).max(0.0);
            values.push(v);
            if rng.gen::<f64>() < switch_prob && self.regime_means_mbps.len() > 1 {
                let mut next = rng.gen_range(0..self.regime_means_mbps.len());
                while next == regime {
                    next = rng.gen_range(0..self.regime_means_mbps.len());
                }
                regime = next;
            }
        }
        BandwidthTrace::from_uniform(self.delta_s, &values).expect("regime trace is valid")
    }
}

/// An "FCC-like" composite generator: draws a per-trace mean uniformly from
/// `[min_mean, max_mean]` Mbps, then layers slow regime variation and fast
/// jitter around it. This mimics how the paper samples FCC traces whose
/// average GTBW falls in a target range (3–8 Mbps for the counterfactual
/// studies, 0.5–10 Mbps for the interventional study).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FccLike {
    /// Lower bound on the per-trace mean bandwidth, in Mbps.
    pub min_mean_mbps: f64,
    /// Upper bound on the per-trace mean bandwidth, in Mbps.
    pub max_mean_mbps: f64,
    /// Relative amplitude of the slow regime variation (fraction of the mean).
    pub slow_amplitude: f64,
    /// Relative amplitude of the fast jitter (fraction of the mean).
    pub fast_amplitude: f64,
    /// Interval width in seconds.
    pub delta_s: f64,
}

impl FccLike {
    /// Creates an FCC-like generator with per-trace means in
    /// `[min_mean_mbps, max_mean_mbps]`.
    pub fn new(min_mean_mbps: f64, max_mean_mbps: f64) -> Self {
        assert!(min_mean_mbps > 0.0 && max_mean_mbps >= min_mean_mbps);
        Self {
            min_mean_mbps,
            max_mean_mbps,
            slow_amplitude: 0.35,
            fast_amplitude: 0.10,
            delta_s: 5.0,
        }
    }

    /// Overrides the interval width.
    pub fn with_delta(mut self, delta_s: f64) -> Self {
        assert!(delta_s > 0.0);
        self.delta_s = delta_s;
        self
    }
}

impl TraceGenerator for FccLike {
    fn generate(&self, duration_s: f64, seed: u64) -> BandwidthTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mean = rng.gen_range(self.min_mean_mbps..=self.max_mean_mbps);
        let n = (duration_s / self.delta_s).ceil().max(1.0) as usize;
        // Slow component: a smooth random phase/frequency sinusoid plus an
        // occasional level shift; fast component: white Gaussian jitter.
        let slow_period_s: f64 = rng.gen_range(60.0..240.0);
        let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut level_shift = 0.0_f64;
        let mut values = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 * self.delta_s;
            if rng.gen::<f64>() < self.delta_s / 180.0 {
                // Rare sustained shift, as seen in residential broadband.
                level_shift = gaussian(&mut rng) * self.slow_amplitude * mean * 0.5;
            }
            let slow = (std::f64::consts::TAU * t / slow_period_s + phase).sin()
                * self.slow_amplitude
                * mean;
            let fast = gaussian(&mut rng) * self.fast_amplitude * mean;
            values.push((mean + slow + level_shift + fast).max(0.1));
        }
        BandwidthTrace::from_uniform(self.delta_s, &values).expect("fcc-like trace is valid")
    }
}

/// Samples a standard normal variate via the Box–Muller transform.
///
/// Kept local so the workspace does not need `rand_distr`.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

fn reflect(value: f64, lo: f64, hi: f64) -> f64 {
    let mut v = value;
    // At most a couple of reflections are ever needed for sane step sizes,
    // but loop defensively.
    for _ in 0..8 {
        if v < lo {
            v = lo + (lo - v);
        } else if v > hi {
            v = hi - (v - hi);
        } else {
            return v;
        }
    }
    v.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    #[test]
    fn constant_generator_is_flat() {
        let t = ConstantTrace::new(18.0).generate(60.0, 7);
        assert_eq!(t.min(), 18.0);
        assert_eq!(t.max(), 18.0);
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let g = FccLike::new(3.0, 8.0);
        assert_eq!(g.generate(600.0, 1), g.generate(600.0, 1));
        let w = RandomWalk::new(0.5, 10.0, 0.5);
        assert_eq!(w.generate(600.0, 5), w.generate(600.0, 5));
        let m = MarkovModulated::new(0.5, 10.0, 0.5, 0.8);
        assert_eq!(m.generate(600.0, 9), m.generate(600.0, 9));
    }

    #[test]
    fn different_seeds_differ() {
        let g = FccLike::new(3.0, 8.0);
        assert_ne!(g.generate(600.0, 1), g.generate(600.0, 2));
    }

    #[test]
    fn traces_cover_requested_duration() {
        for seed in 0..5 {
            let t = FccLike::new(3.0, 8.0).generate(600.0, seed);
            assert!(t.duration() >= 600.0);
            let t = RandomWalk::new(0.5, 10.0, 0.7).generate(600.0, seed);
            assert!(t.duration() >= 600.0);
        }
    }

    #[test]
    fn random_walk_respects_bounds() {
        let g = RandomWalk::new(1.0, 6.0, 2.0);
        for seed in 0..10 {
            let t = g.generate(600.0, seed);
            assert!(t.min() >= 1.0 - 1e-9, "min {} below bound", t.min());
            assert!(t.max() <= 6.0 + 1e-9, "max {} above bound", t.max());
        }
    }

    #[test]
    fn markov_modulated_lands_on_grid() {
        let g = MarkovModulated::new(0.5, 10.0, 0.5, 0.8);
        let t = g.generate(600.0, 3);
        for v in t.values() {
            let snapped = (v / 0.5).round() * 0.5;
            assert!((v - snapped).abs() < 1e-9, "value {v} is off-grid");
        }
    }

    #[test]
    fn markov_modulated_respects_bounds() {
        let g = MarkovModulated::new(2.0, 6.0, 0.5, 0.5);
        for seed in 0..10 {
            let t = g.generate(600.0, seed);
            assert!(t.min() >= 2.0 - 1e-9);
            assert!(t.max() <= 6.0 + 1e-9);
        }
    }

    #[test]
    fn fcc_like_mean_falls_in_requested_band() {
        let g = FccLike::new(3.0, 8.0);
        for seed in 0..20 {
            let t = g.generate(600.0, seed);
            let s = TraceStats::of(&t);
            // The realized mean can wander somewhat outside the drawn mean
            // because of the slow component, but must stay in a loose band.
            assert!(
                s.mean_mbps > 1.5 && s.mean_mbps < 10.5,
                "mean {}",
                s.mean_mbps
            );
            assert!(s.min_mbps >= 0.1);
        }
    }

    #[test]
    fn square_wave_has_two_levels() {
        let g = SquareWave::new(1.0, 5.0, 30.0);
        let t = g.generate(600.0, 11);
        for v in t.values() {
            assert!(v == 1.0 || v == 5.0);
        }
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.max(), 5.0);
    }

    #[test]
    fn regime_switch_stays_non_negative_and_varies() {
        let g = RegimeSwitch::new(vec![1.0, 4.0, 8.0], 0.3, 60.0);
        let t = g.generate(600.0, 13);
        assert!(t.min() >= 0.0);
        let s = TraceStats::of(&t);
        assert!(s.std_mbps > 0.0);
    }

    #[test]
    fn batch_generation_uses_distinct_seeds() {
        let g = FccLike::new(3.0, 8.0);
        let batch = g.generate_batch(300.0, 100, 4);
        assert_eq!(batch.len(), 4);
        assert_ne!(batch[0], batch[1]);
        assert_ne!(batch[2], batch[3]);
    }

    #[test]
    fn gaussian_has_roughly_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn reflect_keeps_values_in_bounds() {
        assert_eq!(reflect(5.0, 0.0, 10.0), 5.0);
        assert_eq!(reflect(-2.0, 0.0, 10.0), 2.0);
        assert_eq!(reflect(13.0, 0.0, 10.0), 7.0);
        let v = reflect(1e6, 0.0, 10.0);
        assert!((0.0..=10.0).contains(&v));
    }
}
