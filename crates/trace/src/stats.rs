//! Summary statistics over bandwidth traces.

use serde::{Deserialize, Serialize};

use crate::BandwidthTrace;

/// Time-weighted summary statistics of a [`BandwidthTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total duration in seconds.
    pub duration_s: f64,
    /// Time-weighted mean bandwidth (Mbps).
    pub mean_mbps: f64,
    /// Minimum segment bandwidth (Mbps).
    pub min_mbps: f64,
    /// Maximum segment bandwidth (Mbps).
    pub max_mbps: f64,
    /// Time-weighted standard deviation of bandwidth (Mbps).
    pub std_mbps: f64,
    /// Mean absolute change between consecutive segments (Mbps) — a measure
    /// of how bursty the trace is.
    pub mean_abs_step_mbps: f64,
    /// Number of segments.
    pub segments: usize,
}

impl TraceStats {
    /// Computes statistics for `trace`.
    pub fn of(trace: &BandwidthTrace) -> Self {
        let duration = trace.duration();
        let mean = trace.mean();
        let mut var_acc = 0.0;
        for seg in trace.segments() {
            let d = seg.bandwidth_mbps - mean;
            var_acc += d * d * seg.interval_s;
        }
        let std = if duration > 0.0 {
            (var_acc / duration).sqrt()
        } else {
            0.0
        };
        let values = trace.values();
        let mean_abs_step = if values.len() > 1 {
            values.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (values.len() - 1) as f64
        } else {
            0.0
        };
        Self {
            duration_s: duration,
            mean_mbps: mean,
            min_mbps: trace.min(),
            max_mbps: trace.max(),
            std_mbps: std,
            mean_abs_step_mbps: mean_abs_step,
            segments: trace.len(),
        }
    }
}

/// Mean absolute error between two traces, sampled on a uniform grid of
/// width `step_s` over the duration of `reference`.
///
/// This is the metric used throughout the evaluation to compare an inferred
/// GTBW time series (Veritas sample or Baseline reconstruction) against the
/// true GTBW.
pub fn trace_mae(reference: &BandwidthTrace, estimate: &BandwidthTrace, step_s: f64) -> f64 {
    assert!(step_s > 0.0);
    let duration = reference.duration();
    let n = (duration / step_s).ceil().max(1.0) as usize;
    let mut acc = 0.0;
    for i in 0..n {
        let t = (i as f64 + 0.5) * step_s;
        acc += (reference.bandwidth_at(t) - estimate.bandwidth_at(t)).abs();
    }
    acc / n as f64
}

/// Root-mean-square error between two traces on a uniform grid.
pub fn trace_rmse(reference: &BandwidthTrace, estimate: &BandwidthTrace, step_s: f64) -> f64 {
    assert!(step_s > 0.0);
    let duration = reference.duration();
    let n = (duration / step_s).ceil().max(1.0) as usize;
    let mut acc = 0.0;
    for i in 0..n {
        let t = (i as f64 + 0.5) * step_s;
        let d = reference.bandwidth_at(t) - estimate.bandwidth_at(t);
        acc += d * d;
    }
    (acc / n as f64).sqrt()
}

/// Fraction of grid points where `estimate` is below `reference` by more than
/// `margin_mbps` — i.e. how often the estimate is *conservative*. The paper's
/// Baseline is systematically conservative in off-periods and when chunks are
/// smaller than the bandwidth-delay product.
pub fn underestimation_fraction(
    reference: &BandwidthTrace,
    estimate: &BandwidthTrace,
    step_s: f64,
    margin_mbps: f64,
) -> f64 {
    assert!(step_s > 0.0);
    let duration = reference.duration();
    let n = (duration / step_s).ceil().max(1.0) as usize;
    let mut under = 0usize;
    for i in 0..n {
        let t = (i as f64 + 0.5) * step_s;
        if estimate.bandwidth_at(t) + margin_mbps < reference.bandwidth_at(t) {
            under += 1;
        }
    }
    under as f64 / n as f64
}

/// Simple percentile over a slice (linear interpolation between ranks).
///
/// `p` is in `[0, 100]`. Returns `NaN` for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_uniform_trace() {
        let t = BandwidthTrace::from_uniform(5.0, &[2.0, 4.0, 6.0]).unwrap();
        let s = TraceStats::of(&t);
        assert!((s.mean_mbps - 4.0).abs() < 1e-12);
        assert_eq!(s.min_mbps, 2.0);
        assert_eq!(s.max_mbps, 6.0);
        assert_eq!(s.segments, 3);
        assert!((s.std_mbps - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((s.mean_abs_step_mbps - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_constant_trace_has_zero_spread() {
        let t = BandwidthTrace::constant(5.0, 30.0);
        let s = TraceStats::of(&t);
        assert_eq!(s.std_mbps, 0.0);
        assert_eq!(s.mean_abs_step_mbps, 0.0);
    }

    #[test]
    fn mae_of_identical_traces_is_zero() {
        let t = BandwidthTrace::from_uniform(5.0, &[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(trace_mae(&t, &t, 1.0), 0.0);
        assert_eq!(trace_rmse(&t, &t, 1.0), 0.0);
    }

    #[test]
    fn mae_of_offset_traces() {
        let a = BandwidthTrace::constant(5.0, 10.0);
        let b = BandwidthTrace::constant(3.0, 10.0);
        assert!((trace_mae(&a, &b, 1.0) - 2.0).abs() < 1e-12);
        assert!((trace_rmse(&a, &b, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn underestimation_detects_conservative_estimates() {
        let truth = BandwidthTrace::constant(5.0, 10.0);
        let low = BandwidthTrace::constant(2.0, 10.0);
        let high = BandwidthTrace::constant(8.0, 10.0);
        assert_eq!(underestimation_fraction(&truth, &low, 1.0, 0.5), 1.0);
        assert_eq!(underestimation_fraction(&truth, &high, 1.0, 0.5), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
        assert!(percentile(&[], 50.0).is_nan());
    }
}
