//! Capacity quantization onto the ε-grid used by the EHMM state space.

use serde::{Deserialize, Serialize};

use crate::BandwidthTrace;

/// Quantizes capacities to multiples of `epsilon` Mbps within `[0, max]`.
///
/// The paper (§3.2) quantizes the hidden GTBW values to a grid
/// `{0, ε, 2ε, …}` so that the EHMM has a finite, discrete state space. The
/// same grid is reused by trace generators so synthetic ground truth lands
/// exactly on representable states when desired.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    epsilon_mbps: f64,
    max_mbps: f64,
}

impl Quantizer {
    /// Creates a quantizer with grid step `epsilon_mbps` and ceiling `max_mbps`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon_mbps <= 0`, `max_mbps < epsilon_mbps`, or either is
    /// not finite.
    pub fn new(epsilon_mbps: f64, max_mbps: f64) -> Self {
        assert!(
            epsilon_mbps.is_finite() && epsilon_mbps > 0.0,
            "epsilon must be positive and finite"
        );
        assert!(
            max_mbps.is_finite() && max_mbps >= epsilon_mbps,
            "max must be finite and at least epsilon"
        );
        Self {
            epsilon_mbps,
            max_mbps,
        }
    }

    /// The grid step in Mbps.
    pub fn epsilon(&self) -> f64 {
        self.epsilon_mbps
    }

    /// The grid ceiling in Mbps.
    pub fn max(&self) -> f64 {
        self.max_mbps
    }

    /// Number of states on the grid (index `0` is 0 Mbps, the last index is
    /// the largest multiple of ε not exceeding `max`).
    pub fn num_states(&self) -> usize {
        (self.max_mbps / self.epsilon_mbps).floor() as usize + 1
    }

    /// The capacity in Mbps represented by state `index`.
    ///
    /// Indices past the end of the grid clamp to the top state.
    pub fn value(&self, index: usize) -> f64 {
        let idx = index.min(self.num_states() - 1);
        idx as f64 * self.epsilon_mbps
    }

    /// All representable capacities, lowest to highest.
    pub fn values(&self) -> Vec<f64> {
        (0..self.num_states()).map(|i| self.value(i)).collect()
    }

    /// The state index nearest to `bandwidth_mbps` (clamped to the grid).
    pub fn index_of(&self, bandwidth_mbps: f64) -> usize {
        if !bandwidth_mbps.is_finite() || bandwidth_mbps <= 0.0 {
            return 0;
        }
        let raw = (bandwidth_mbps / self.epsilon_mbps).round() as usize;
        raw.min(self.num_states() - 1)
    }

    /// Snaps `bandwidth_mbps` to the nearest representable capacity.
    pub fn quantize(&self, bandwidth_mbps: f64) -> f64 {
        self.value(self.index_of(bandwidth_mbps))
    }

    /// Quantizes every segment of a trace onto the grid.
    pub fn quantize_trace(&self, trace: &BandwidthTrace) -> BandwidthTrace {
        let segments = trace
            .segments()
            .iter()
            .map(|seg| crate::TraceSegment {
                interval_s: seg.interval_s,
                bandwidth_mbps: self.quantize(seg.bandwidth_mbps),
            })
            .collect();
        BandwidthTrace::new(segments).expect("quantized trace is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_size_and_values() {
        let q = Quantizer::new(0.5, 10.0);
        assert_eq!(q.num_states(), 21);
        assert_eq!(q.value(0), 0.0);
        assert_eq!(q.value(1), 0.5);
        assert_eq!(q.value(20), 10.0);
        assert_eq!(q.value(999), 10.0, "out-of-range index clamps to top state");
    }

    #[test]
    fn rounds_to_nearest() {
        let q = Quantizer::new(0.5, 10.0);
        assert_eq!(q.quantize(0.2), 0.0);
        assert_eq!(q.quantize(0.26), 0.5);
        assert_eq!(q.quantize(3.74), 3.5);
        assert_eq!(q.quantize(3.76), 4.0);
    }

    #[test]
    fn clamps_to_bounds() {
        let q = Quantizer::new(0.5, 10.0);
        assert_eq!(q.quantize(-1.0), 0.0);
        assert_eq!(q.quantize(50.0), 10.0);
        assert_eq!(q.index_of(f64::NAN), 0);
    }

    #[test]
    fn quantize_round_trips_grid_points() {
        let q = Quantizer::new(0.25, 8.0);
        for i in 0..q.num_states() {
            let v = q.value(i);
            assert_eq!(q.index_of(v), i);
            assert_eq!(q.quantize(v), v);
        }
    }

    #[test]
    fn quantizes_traces_segmentwise() {
        let q = Quantizer::new(1.0, 5.0);
        let t = BandwidthTrace::from_uniform(5.0, &[0.4, 1.6, 7.0]).unwrap();
        let qt = q.quantize_trace(&t);
        assert_eq!(qt.values(), vec![0.0, 2.0, 5.0]);
        assert_eq!(qt.duration(), t.duration());
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_zero_epsilon() {
        let _ = Quantizer::new(0.0, 10.0);
    }
}
