//! The Veritas Viterbi variant (paper Algorithm 3).
//!
//! Identical to the textbook Viterbi decoder except that the transition
//! between consecutive observations `n−1 → n` uses `A^{Δ_n}` (the one-step
//! matrix raised to the embedded gap) instead of a constant `A`.
//!
//! The computation lives in [`EhmmWorkspace::viterbi`], which scores steps
//! against memoized `ln A^Δ` tables (no per-step `ln`, no matrix clones)
//! and restricts the maximization to the kernel's band. This module keeps
//! the public [`ViterbiResult`] type and the classic free-function entry
//! points.

use crate::model::{EhmmSpec, EmissionTable};
use crate::workspace::EhmmWorkspace;

/// Result of Viterbi decoding.
#[derive(Debug, Clone, PartialEq)]
pub struct ViterbiResult {
    /// Most likely hidden state index per observation.
    pub path: Vec<usize>,
    /// Log-likelihood of the best path (up to the per-observation emission
    /// constants, which cancel between candidate paths).
    pub log_likelihood: f64,
}

/// Runs the embedded-gap Viterbi decoder and returns the most likely state
/// sequence for the observations.
///
/// Convenience wrapper building a single-use [`EhmmWorkspace`]; callers with
/// many decodes over the same spec should create one workspace and call
/// [`EhmmWorkspace::viterbi`] to share the per-gap log-power tables.
pub fn viterbi(spec: &EhmmSpec, obs: &EmissionTable) -> ViterbiResult {
    EhmmWorkspace::new(spec.clone()).viterbi(obs)
}

/// Log-score of an arbitrary state path under the model — used by tests and
/// by property checks asserting that Viterbi's path is at least as likely as
/// any other candidate.
pub fn path_log_score(spec: &EhmmSpec, obs: &EmissionTable, path: &[usize]) -> f64 {
    EhmmWorkspace::new(spec.clone()).path_log_score(obs, path)
}

pub(crate) fn safe_ln(p: f64) -> f64 {
    if p <= 0.0 {
        f64::NEG_INFINITY
    } else {
        p.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::TransitionMatrix;

    /// A 3-state model where state 1 is sticky and the emissions clearly
    /// identify the state.
    fn simple_spec() -> EhmmSpec {
        EhmmSpec::with_uniform_initial(TransitionMatrix::tridiagonal(3, 0.8))
    }

    fn peaked_emissions(states: &[usize], num_states: usize) -> Vec<Vec<f64>> {
        states
            .iter()
            .map(|&s| {
                (0..num_states)
                    .map(|i| if i == s { -0.1 } else { -8.0 })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn recovers_clearly_identified_states() {
        let spec = simple_spec();
        let truth = vec![0, 0, 1, 1, 2, 2, 1];
        let obs = EmissionTable::new(peaked_emissions(&truth, 3), vec![0, 1, 1, 1, 1, 1, 1]);
        let result = viterbi(&spec, &obs);
        assert_eq!(result.path, truth);
    }

    #[test]
    fn ambiguous_emissions_fall_back_to_the_sticky_prior() {
        let spec = simple_spec();
        // First and last observations identify state 2; the middle ones are
        // completely uninformative. The tridiagonal prior should keep the
        // path at state 2 throughout rather than wandering.
        let mut rows = peaked_emissions(&[2], 3);
        for _ in 0..4 {
            rows.push(vec![-1.0, -1.0, -1.0]);
        }
        rows.extend(peaked_emissions(&[2], 3));
        let obs = EmissionTable::new(rows, vec![0, 1, 1, 1, 1, 1]);
        let result = viterbi(&spec, &obs);
        assert_eq!(result.path, vec![2; 6]);
    }

    #[test]
    fn viterbi_beats_or_matches_any_enumerated_path() {
        let spec = simple_spec();
        let rows = vec![
            vec![-0.2, -1.5, -3.0],
            vec![-1.0, -0.4, -2.0],
            vec![-2.5, -0.9, -0.8],
            vec![-3.0, -1.2, -0.3],
        ];
        let obs = EmissionTable::new(rows, vec![0, 1, 3, 2]);
        let result = viterbi(&spec, &obs);
        let viterbi_score = path_log_score(&spec, &obs, &result.path);
        assert!((viterbi_score - result.log_likelihood).abs() < 1e-9);
        // Enumerate all 3^4 paths.
        for idx in 0..81usize {
            let mut rem = idx;
            let mut path = vec![0usize; 4];
            for slot in path.iter_mut() {
                *slot = rem % 3;
                rem /= 3;
            }
            let score = path_log_score(&spec, &obs, &path);
            assert!(
                score <= viterbi_score + 1e-9,
                "path {path:?} (score {score}) beats Viterbi ({viterbi_score})"
            );
        }
    }

    #[test]
    fn larger_gaps_allow_larger_jumps() {
        let spec = simple_spec();
        // Two observations: state 0 then state 2. With a gap of 1 the
        // tridiagonal chain cannot jump two rungs, so Viterbi must
        // compromise; with a gap of 3 the jump becomes feasible and both
        // endpoints can be honored.
        let rows = peaked_emissions(&[0, 2], 3);
        let tight = EmissionTable::new(rows.clone(), vec![0, 1]);
        let loose = EmissionTable::new(rows, vec![0, 3]);
        let tight_path = viterbi(&spec, &tight).path;
        let loose_path = viterbi(&spec, &loose).path;
        assert_eq!(loose_path, vec![0, 2]);
        assert_ne!(
            tight_path,
            vec![0, 2],
            "a one-step tridiagonal chain cannot jump 0 -> 2"
        );
    }

    #[test]
    fn zero_gap_forces_identical_states() {
        let spec = simple_spec();
        // Contradictory peaked emissions but a gap of zero (same interval):
        // the decoder must keep the two observations in the same state.
        let rows = peaked_emissions(&[0, 2], 3);
        let obs = EmissionTable::new(rows, vec![0, 0]);
        let path = viterbi(&spec, &obs).path;
        assert_eq!(path[0], path[1]);
    }

    #[test]
    fn single_observation_picks_the_emission_argmax() {
        let spec = simple_spec();
        let obs = EmissionTable::new(vec![vec![-5.0, -0.2, -4.0]], vec![0]);
        assert_eq!(viterbi(&spec, &obs).path, vec![1]);
    }

    #[test]
    #[should_panic(expected = "disagree on the state count")]
    fn mismatched_state_counts_panic() {
        let spec = simple_spec();
        let obs = EmissionTable::new(vec![vec![-1.0, -1.0]], vec![0]);
        let _ = viterbi(&spec, &obs);
    }
}
