//! Model specification and observation table for the embedded HMM.

use serde::{Deserialize, Serialize};

use crate::matrix::TransitionMatrix;

/// The hidden-chain specification of the EHMM: the one-step transition
/// matrix over the quantized capacity grid and the initial distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EhmmSpec {
    transition: TransitionMatrix,
    /// Initial distribution over states (linear space, sums to 1).
    initial: Vec<f64>,
}

impl EhmmSpec {
    /// Builds a spec from a transition matrix and an explicit initial
    /// distribution.
    ///
    /// # Panics
    ///
    /// Panics if the initial distribution has the wrong length, contains
    /// negative or non-finite entries, or does not sum to 1 (±1e-6).
    pub fn new(transition: TransitionMatrix, initial: Vec<f64>) -> Self {
        assert_eq!(
            initial.len(),
            transition.num_states(),
            "initial distribution length must match the state count"
        );
        let mut sum = 0.0;
        for &p in &initial {
            assert!(p.is_finite() && p >= 0.0, "invalid initial probability {p}");
            sum += p;
        }
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "initial distribution sums to {sum}"
        );
        Self {
            transition,
            initial,
        }
    }

    /// A spec with the uniform initial distribution the paper uses.
    pub fn with_uniform_initial(transition: TransitionMatrix) -> Self {
        let n = transition.num_states();
        Self::new(transition, vec![1.0 / n as f64; n])
    }

    /// Number of hidden states.
    pub fn num_states(&self) -> usize {
        self.transition.num_states()
    }

    /// The one-step transition matrix.
    pub fn transition(&self) -> &TransitionMatrix {
        &self.transition
    }

    /// The initial distribution (linear space).
    pub fn initial(&self) -> &[f64] {
        &self.initial
    }
}

/// Per-observation emission log-densities and embedded transition gaps.
///
/// `log_density[n][i]` is `log P(Y_n | C_{s_n} = state_i, W_{s_n}, S_n)` —
/// computed by the caller from the domain model (the TCP estimator `f` plus
/// Gaussian noise), which is what makes this an *embedded* HMM rather than a
/// generic one. `gaps[n]` is `Δ_n = s_n − s_{n−1}` measured in δ-intervals;
/// `gaps[0]` is ignored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmissionTable {
    log_density: Vec<Vec<f64>>,
    gaps: Vec<u32>,
}

impl EmissionTable {
    /// Builds a table, validating shapes and finiteness.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty, rows are ragged, any density is NaN, or
    /// `gaps` length differs from the number of observations.
    pub fn new(log_density: Vec<Vec<f64>>, gaps: Vec<u32>) -> Self {
        assert!(!log_density.is_empty(), "need at least one observation");
        let k = log_density[0].len();
        assert!(k > 0, "need at least one state");
        for (n, row) in log_density.iter().enumerate() {
            assert_eq!(row.len(), k, "observation {n} has a ragged emission row");
            assert!(
                row.iter().all(|v| !v.is_nan()),
                "observation {n} has NaN emission densities"
            );
        }
        assert_eq!(
            gaps.len(),
            log_density.len(),
            "gaps length must equal the number of observations"
        );
        Self { log_density, gaps }
    }

    /// Number of observations (chunks).
    pub fn num_obs(&self) -> usize {
        self.log_density.len()
    }

    /// Number of hidden states.
    pub fn num_states(&self) -> usize {
        self.log_density[0].len()
    }

    /// Emission log-density row for observation `n`.
    pub fn log_row(&self, n: usize) -> &[f64] {
        &self.log_density[n]
    }

    /// Embedded transition gap `Δ_n` for observation `n` (`n ≥ 1`).
    pub fn gap(&self, n: usize) -> u32 {
        self.gaps[n]
    }

    /// All gaps.
    pub fn gaps(&self) -> &[u32] {
        &self.gaps
    }

    /// Emission probabilities for observation `n` in linear space, rescaled
    /// so the largest entry is 1 (the per-observation constant cancels in
    /// every posterior quantity, and rescaling avoids underflow).
    pub fn scaled_linear_row(&self, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.num_states()];
        self.scaled_linear_row_into(n, &mut out);
        out
    }

    /// Writes [`Self::scaled_linear_row`] for observation `n` into `out`
    /// without allocating — the hot-path variant the inference workspace
    /// uses to fill one flat emission buffer.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the state count.
    pub fn scaled_linear_row_into(&self, n: usize, out: &mut [f64]) {
        let row = self.log_row(n);
        assert_eq!(out.len(), row.len(), "output row has the wrong length");
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if !max.is_finite() {
            // Every state is impossible; return a flat row so the algorithms
            // degrade to prior-driven inference instead of emitting NaNs.
            out.fill(1.0);
            return;
        }
        for (slot, &v) in out.iter_mut().zip(row) {
            *slot = (v - max).exp();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validates_initial_distribution() {
        let t = TransitionMatrix::tridiagonal(3, 0.8);
        let spec = EhmmSpec::new(t.clone(), vec![0.2, 0.3, 0.5]);
        assert_eq!(spec.num_states(), 3);
        assert_eq!(spec.initial()[2], 0.5);
        let uniform = EhmmSpec::with_uniform_initial(t);
        assert!((uniform.initial().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn spec_rejects_unnormalized_initial() {
        let t = TransitionMatrix::tridiagonal(3, 0.8);
        let _ = EhmmSpec::new(t, vec![0.2, 0.3, 0.1]);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn spec_rejects_wrong_length_initial() {
        let t = TransitionMatrix::tridiagonal(3, 0.8);
        let _ = EhmmSpec::new(t, vec![0.5, 0.5]);
    }

    #[test]
    fn emission_table_shape_checks() {
        let table = EmissionTable::new(vec![vec![-1.0, -2.0], vec![-0.5, -3.0]], vec![0, 2]);
        assert_eq!(table.num_obs(), 2);
        assert_eq!(table.num_states(), 2);
        assert_eq!(table.gap(1), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn emission_table_rejects_ragged_rows() {
        let _ = EmissionTable::new(vec![vec![-1.0, -2.0], vec![-0.5]], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "gaps length")]
    fn emission_table_rejects_wrong_gaps() {
        let _ = EmissionTable::new(vec![vec![-1.0, -2.0]], vec![0, 1]);
    }

    #[test]
    fn scaled_linear_row_peaks_at_one() {
        let table = EmissionTable::new(vec![vec![-10.0, -2.0, -5.0]], vec![0]);
        let row = table.scaled_linear_row(0);
        assert!((row[1] - 1.0).abs() < 1e-12);
        assert!(row[0] < row[2]);
    }

    #[test]
    fn scaled_linear_row_handles_all_impossible_states() {
        let table = EmissionTable::new(vec![vec![f64::NEG_INFINITY, f64::NEG_INFINITY]], vec![0]);
        let row = table.scaled_linear_row(0);
        assert_eq!(row, vec![1.0, 1.0]);
    }
}
