//! Flat row-major buffers for the inference hot path.
//!
//! Every per-observation quantity of the EHMM kernels (α, β, γ, emissions,
//! and each step's pairwise posterior) used to live in `Vec<Vec<f64>>`: one
//! heap allocation per row and a pointer chase per access. [`StateMatrix`]
//! replaces that with a single contiguous allocation plus a row stride,
//! while still *indexing* like the nested representation (`m[n][i]`), so
//! downstream code — the capacity sampler, tests, callers reading
//! `Posteriors::gamma` — is unchanged.

use std::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` matrix of `f64` in one contiguous
/// allocation.
///
/// `m[r]` yields the `r`-th row as a `&[f64]`, so `m[r][c]` reads entry
/// `(r, c)` exactly like the nested-`Vec` layout it replaces. Iteration
/// (`m.iter()`, `for row in &m`) walks rows in order.
#[derive(Debug, Clone, PartialEq)]
pub struct StateMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl StateMatrix {
    /// A `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero (rows must be indexable).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// A `rows × cols` matrix with every entry set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero (rows must be indexable).
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        assert!(cols > 0, "StateMatrix rows must be non-empty");
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wraps an existing row-major buffer as a `rows × cols` matrix —
    /// the reconstruction path for posteriors restored from a persistent
    /// store, where the flat buffer already exists byte-for-byte.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero or `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(cols > 0, "StateMatrix rows must be non-empty");
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows * cols"
        );
        Self { rows, cols, data }
    }

    /// Number of rows. Named `len` because a `StateMatrix` stands in for a
    /// `Vec` of rows wherever the kernels used nested `Vec`s.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns (entries per row).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `r`-th row.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of the `r`-th row.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The whole buffer, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the whole buffer, row-major.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Simultaneous borrow of row `n − 1` (shared) and row `n` (mutable) —
    /// the forward-recursion access pattern.
    pub fn prev_and_current(&mut self, n: usize) -> (&[f64], &mut [f64]) {
        assert!(n >= 1 && n < self.rows, "row {n} out of range");
        let (head, tail) = self.data.split_at_mut(n * self.cols);
        (&head[(n - 1) * self.cols..], &mut tail[..self.cols])
    }

    /// Simultaneous borrow of row `n` (mutable) and row `n + 1` (shared) —
    /// the backward-recursion access pattern.
    pub fn current_and_next(&mut self, n: usize) -> (&mut [f64], &[f64]) {
        assert!(n + 1 < self.rows, "rows {n}, {} out of range", n + 1);
        let (head, tail) = self.data.split_at_mut((n + 1) * self.cols);
        (&mut head[n * self.cols..], &tail[..self.cols])
    }

    /// Iterates over rows in order.
    pub fn iter(&self) -> std::slice::ChunksExact<'_, f64> {
        self.data.chunks_exact(self.cols)
    }
}

impl Index<usize> for StateMatrix {
    type Output = [f64];

    fn index(&self, r: usize) -> &[f64] {
        self.row(r)
    }
}

impl IndexMut<usize> for StateMatrix {
    fn index_mut(&mut self, r: usize) -> &mut [f64] {
        self.row_mut(r)
    }
}

impl<'a> IntoIterator for &'a StateMatrix {
    type Item = &'a [f64];
    type IntoIter = std::slice::ChunksExact<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Normalizes a vector in place to sum to 1 and returns the log of its
/// pre-normalization sum. A zero (or degenerate) sum leaves a flat
/// distribution and contributes 0 to the log-likelihood.
pub(crate) fn normalize(v: &mut [f64]) -> f64 {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
        sum.ln()
    } else {
        let flat = 1.0 / v.len() as f64;
        for x in v.iter_mut() {
            *x = flat;
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_like_nested_vecs() {
        let mut m = StateMatrix::zeros(3, 2);
        m[1][0] = 5.0;
        m[2][1] = 7.0;
        assert_eq!(m[0], [0.0, 0.0]);
        assert_eq!(m[1][0], 5.0);
        assert_eq!(m.row(2), &[0.0, 7.0]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.cols(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn filled_and_iteration() {
        let m = StateMatrix::filled(2, 3, 1.5);
        let rows: Vec<&[f64]> = m.iter().collect();
        assert_eq!(rows, vec![&[1.5, 1.5, 1.5][..], &[1.5, 1.5, 1.5][..]]);
        let by_ref: Vec<&[f64]> = (&m).into_iter().collect();
        assert_eq!(by_ref.len(), 2);
    }

    #[test]
    fn split_borrows_address_adjacent_rows() {
        let mut m = StateMatrix::zeros(4, 2);
        m[0][0] = 1.0;
        {
            let (prev, cur) = m.prev_and_current(1);
            assert_eq!(prev, &[1.0, 0.0]);
            cur[1] = 2.0;
        }
        assert_eq!(m[1], [0.0, 2.0]);
        {
            let (cur, next) = m.current_and_next(0);
            assert_eq!(next, &[0.0, 2.0]);
            cur[0] = 9.0;
        }
        assert_eq!(m[0], [9.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_zero_columns() {
        let _ = StateMatrix::zeros(2, 0);
    }

    #[test]
    fn from_vec_round_trips_the_flat_buffer() {
        let m = StateMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[1], [4.0, 5.0, 6.0]);
        assert_eq!(StateMatrix::from_vec(2, 3, m.as_slice().to_vec()), m);
    }

    #[test]
    #[should_panic(expected = "rows * cols")]
    fn from_vec_rejects_mismatched_lengths() {
        let _ = StateMatrix::from_vec(2, 3, vec![0.0; 5]);
    }

    #[test]
    fn normalize_returns_log_mass_and_handles_zero() {
        let mut v = vec![1.0, 3.0];
        let log_sum = normalize(&mut v);
        assert!((log_sum - 4.0_f64.ln()).abs() < 1e-12);
        assert_eq!(v, vec![0.25, 0.75]);
        let mut zero = vec![0.0, 0.0];
        assert_eq!(normalize(&mut zero), 0.0);
        assert_eq!(zero, vec![0.5, 0.5]);
    }
}
