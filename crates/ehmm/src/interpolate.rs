//! Reconstruction of the full hidden-state time series from per-chunk samples.
//!
//! The EHMM only attaches hidden states to the δ-intervals in which chunk
//! downloads *start*; intervals covered by off-periods (or by long downloads)
//! have no observation. The paper interpolates those intermediate `C_t` from
//! the sampled `C_{s_1:N}` — this module implements that reconstruction.

/// Expands per-chunk states into a state index per δ-interval.
///
/// * `start_intervals[n]` — the δ-interval index in which chunk `n` starts
///   (non-decreasing).
/// * `states[n]` — the sampled state index for chunk `n`.
/// * `total_intervals` — the length `T` of the reconstructed series.
///
/// Intervals before the first chunk hold the first state, intervals after
/// the last chunk hold the last state, and intervals between two chunk
/// starts are linearly interpolated between their states (rounded to the
/// nearest integer grid index). When several chunks start in the same
/// interval the last one wins.
///
/// # Panics
///
/// Panics if the inputs are empty, lengths differ, or `start_intervals` is
/// not sorted.
pub fn interpolate_full_path(
    start_intervals: &[usize],
    states: &[usize],
    total_intervals: usize,
) -> Vec<usize> {
    assert!(!start_intervals.is_empty(), "need at least one chunk");
    assert_eq!(
        start_intervals.len(),
        states.len(),
        "start_intervals and states must have equal length"
    );
    assert!(total_intervals > 0);
    assert!(
        start_intervals.windows(2).all(|w| w[0] <= w[1]),
        "start intervals must be non-decreasing"
    );

    // Deduplicate intervals: keep the last chunk's state for each interval.
    let mut anchors: Vec<(usize, usize)> = Vec::with_capacity(start_intervals.len());
    for (&t, &s) in start_intervals.iter().zip(states) {
        let t = t.min(total_intervals - 1);
        match anchors.last_mut() {
            Some(last) if last.0 == t => last.1 = s,
            _ => anchors.push((t, s)),
        }
    }

    let mut out = vec![0usize; total_intervals];
    // Before the first anchor.
    for slot in out.iter_mut().take(anchors[0].0) {
        *slot = anchors[0].1;
    }
    // Between anchors: linear interpolation.
    for w in anchors.windows(2) {
        let (t0, s0) = w[0];
        let (t1, s1) = w[1];
        let span = (t1 - t0).max(1) as f64;
        for t in t0..=t1.min(total_intervals - 1) {
            let frac = (t - t0) as f64 / span;
            let value = s0 as f64 + frac * (s1 as f64 - s0 as f64);
            out[t] = value.round().max(0.0) as usize;
        }
    }
    // From the last anchor to the end.
    let (t_last, s_last) = *anchors.last().expect("non-empty anchors");
    for slot in out.iter_mut().skip(t_last) {
        *slot = s_last;
    }
    out
}

/// Converts a per-interval state-index series into values using a grid
/// (e.g. the ε-quantized capacities).
pub fn states_to_values(states: &[usize], grid: &[f64]) -> Vec<f64> {
    states
        .iter()
        .map(|&s| grid[s.min(grid.len() - 1)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chunk_fills_the_whole_series() {
        let path = interpolate_full_path(&[3], &[5], 8);
        assert_eq!(path, vec![5; 8]);
    }

    #[test]
    fn holds_edges_and_interpolates_between_anchors() {
        // Chunks at intervals 2 and 6 with states 0 and 4.
        let path = interpolate_full_path(&[2, 6], &[0, 4], 10);
        assert_eq!(&path[..3], &[0, 0, 0]);
        assert_eq!(path[6], 4);
        assert_eq!(&path[7..], &[4, 4, 4]);
        // Linear in between: 2->0, 3->1, 4->2, 5->3, 6->4.
        assert_eq!(&path[2..7], &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn same_interval_chunks_use_the_last_state() {
        let path = interpolate_full_path(&[1, 1, 1], &[2, 3, 4], 4);
        assert_eq!(path, vec![4, 4, 4, 4]);
    }

    #[test]
    fn descending_interpolation_works_too() {
        let path = interpolate_full_path(&[0, 4], &[4, 0], 5);
        assert_eq!(path, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn out_of_range_start_interval_is_clamped() {
        let path = interpolate_full_path(&[0, 50], &[1, 3], 5);
        assert_eq!(path.len(), 5);
        assert_eq!(path[4], 3);
    }

    #[test]
    fn states_to_values_maps_through_the_grid() {
        let grid = [0.0, 0.5, 1.0, 1.5];
        assert_eq!(
            states_to_values(&[0, 2, 3, 9], &grid),
            vec![0.0, 1.0, 1.5, 1.5]
        );
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_unsorted_intervals() {
        let _ = interpolate_full_path(&[5, 2], &[0, 1], 10);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_lengths() {
        let _ = interpolate_full_path(&[1, 2], &[0], 10);
    }
}
