//! The Veritas Baum–Welch forward–backward variant (paper Algorithm 2).
//!
//! As with the Viterbi variant, the only structural change from the textbook
//! algorithm is that transitions between consecutive observations use
//! `A^{Δ_n}`. The implementation uses per-step scaling (normalizing the
//! forward and backward vectors) so long sessions do not underflow, and
//! returns both the per-observation marginals `γ` and the pairwise
//! posteriors `Γ` (called `ξ` in HMM literature) that the capacity sampler
//! consumes.
//!
//! The computation itself lives in [`EhmmWorkspace::forward_backward`] —
//! flat buffers, banded matvecs, shared per-gap kernels. This module keeps
//! the public [`Posteriors`] type and the classic free-function entry point.

use crate::dense::StateMatrix;
use crate::model::{EhmmSpec, EmissionTable};
use crate::workspace::EhmmWorkspace;

/// Posterior quantities produced by the forward–backward pass.
///
/// Both fields are flat row-major buffers that index like the nested
/// `Vec`s they replaced: `gamma[n][i]` and `xi[n][i][j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Posteriors {
    /// `gamma[n][i] = P(C_{s_n} = i | Y_{1:N}, W, S)`.
    pub gamma: StateMatrix,
    /// `xi[n][i][j] = P(C_{s_n} = i, C_{s_{n+1}} = j | Y_{1:N}, W, S)`,
    /// defined for `n = 0..N−2` (the paper's `Γ_{i,j,n}`); each step is one
    /// flat K×K matrix.
    pub xi: Vec<StateMatrix>,
    /// Log-likelihood of the observations under the model, up to the
    /// per-observation emission scaling constants (comparable across
    /// candidate hidden-state priors for the same observations).
    pub log_likelihood: f64,
}

impl Posteriors {
    /// Marginally most likely state per observation (differs in general from
    /// the Viterbi path, which is the jointly most likely sequence).
    pub fn marginal_map_path(&self) -> Vec<usize> {
        self.gamma
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite posteriors"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Posterior mean of an arbitrary state-indexed value (e.g. the capacity
    /// grid) at observation `n`.
    pub fn posterior_mean(&self, n: usize, values: &[f64]) -> f64 {
        self.gamma[n].iter().zip(values).map(|(&p, &v)| p * v).sum()
    }
}

/// Runs the scaled forward–backward algorithm with embedded transition gaps.
///
/// Convenience wrapper building a single-use [`EhmmWorkspace`]; callers with
/// many passes over the same spec should create one workspace and call
/// [`EhmmWorkspace::forward_backward`] to share the per-gap kernels.
pub fn forward_backward(spec: &EhmmSpec, obs: &EmissionTable) -> Posteriors {
    EhmmWorkspace::new(spec.clone()).forward_backward(obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{TransitionMatrix, TransitionPowers};

    fn spec3() -> EhmmSpec {
        EhmmSpec::with_uniform_initial(TransitionMatrix::tridiagonal(3, 0.7))
    }

    /// Exact posteriors by brute-force enumeration of every state sequence.
    fn brute_force(spec: &EhmmSpec, obs: &EmissionTable) -> (Vec<Vec<f64>>, Vec<Vec<Vec<f64>>>) {
        let num_states = spec.num_states();
        let num_obs = obs.num_obs();
        let mut powers = TransitionPowers::new(spec.transition().clone());
        let emissions: Vec<Vec<f64>> = (0..num_obs).map(|n| obs.scaled_linear_row(n)).collect();
        let total_paths = num_states.pow(num_obs as u32);
        let mut gamma = vec![vec![0.0; num_states]; num_obs];
        let mut xi = vec![vec![vec![0.0; num_states]; num_states]; num_obs - 1];
        let mut z = 0.0;
        for idx in 0..total_paths {
            let mut rem = idx;
            let mut path = vec![0usize; num_obs];
            for slot in path.iter_mut() {
                *slot = rem % num_states;
                rem /= num_states;
            }
            let mut w = spec.initial()[path[0]] * emissions[0][path[0]];
            for n in 1..num_obs {
                let a = powers.power(obs.gap(n));
                w *= a.get(path[n - 1], path[n]) * emissions[n][path[n]];
            }
            z += w;
            for n in 0..num_obs {
                gamma[n][path[n]] += w;
            }
            for n in 0..num_obs - 1 {
                xi[n][path[n]][path[n + 1]] += w;
            }
        }
        for row in &mut gamma {
            for v in row.iter_mut() {
                *v /= z;
            }
        }
        for pair in &mut xi {
            for row in pair.iter_mut() {
                for v in row.iter_mut() {
                    *v /= z;
                }
            }
        }
        (gamma, xi)
    }

    fn example_obs() -> EmissionTable {
        EmissionTable::new(
            vec![
                vec![-0.2, -1.5, -3.0],
                vec![-1.0, -0.4, -2.0],
                vec![-2.5, -0.9, -0.8],
                vec![-3.0, -1.2, -0.3],
            ],
            vec![0, 1, 3, 2],
        )
    }

    #[test]
    fn marginals_sum_to_one() {
        let p = forward_backward(&spec3(), &example_obs());
        for (n, row) in p.gamma.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "gamma[{n}] sums to {sum}");
            assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
        }
        for (n, pair) in p.xi.iter().enumerate() {
            let sum: f64 = pair.iter().flatten().sum();
            assert!((sum - 1.0).abs() < 1e-9, "xi[{n}] sums to {sum}");
        }
    }

    #[test]
    fn matches_brute_force_enumeration() {
        let spec = spec3();
        let obs = example_obs();
        let p = forward_backward(&spec, &obs);
        let (gamma_bf, xi_bf) = brute_force(&spec, &obs);
        for n in 0..obs.num_obs() {
            for i in 0..3 {
                assert!(
                    (p.gamma[n][i] - gamma_bf[n][i]).abs() < 1e-9,
                    "gamma[{n}][{i}]: {} vs brute force {}",
                    p.gamma[n][i],
                    gamma_bf[n][i]
                );
            }
        }
        for n in 0..obs.num_obs() - 1 {
            for i in 0..3 {
                for j in 0..3 {
                    assert!(
                        (p.xi[n][i][j] - xi_bf[n][i][j]).abs() < 1e-9,
                        "xi[{n}][{i}][{j}]: {} vs {}",
                        p.xi[n][i][j],
                        xi_bf[n][i][j]
                    );
                }
            }
        }
    }

    #[test]
    fn pair_marginals_are_consistent_with_gamma() {
        let p = forward_backward(&spec3(), &example_obs());
        for n in 0..p.xi.len() {
            for i in 0..3 {
                let row_sum: f64 = p.xi[n][i].iter().sum();
                assert!(
                    (row_sum - p.gamma[n][i]).abs() < 1e-9,
                    "sum_j xi[{n}][{i}][j] = {row_sum} != gamma[{n}][{i}] = {}",
                    p.gamma[n][i]
                );
            }
            for j in 0..3 {
                let col_sum: f64 = (0..3).map(|i| p.xi[n][i][j]).sum();
                assert!((col_sum - p.gamma[n + 1][j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn peaked_emissions_pin_the_posterior() {
        let spec = spec3();
        let obs = EmissionTable::new(
            vec![
                vec![-0.1, -12.0, -12.0],
                vec![-12.0, -0.1, -12.0],
                vec![-12.0, -12.0, -0.1],
            ],
            vec![0, 2, 2],
        );
        let p = forward_backward(&spec, &obs);
        assert!(p.gamma[0][0] > 0.98);
        assert!(p.gamma[1][1] > 0.98);
        assert!(p.gamma[2][2] > 0.98);
        assert_eq!(p.marginal_map_path(), vec![0, 1, 2]);
    }

    #[test]
    fn uninformative_emissions_recover_the_prior_chain() {
        // With flat emissions the marginal at the first observation is the
        // initial distribution.
        let spec = spec3();
        let obs = EmissionTable::new(vec![vec![-1.0; 3]; 4], vec![0, 1, 1, 1]);
        let p = forward_backward(&spec, &obs);
        for i in 0..3 {
            assert!((p.gamma[0][i] - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn posterior_mean_interpolates_between_states() {
        let spec = spec3();
        let obs = EmissionTable::new(vec![vec![-0.5, -0.5, -30.0]], vec![0]);
        let p = forward_backward(&spec, &obs);
        let mean = p.posterior_mean(0, &[0.0, 1.0, 2.0]);
        assert!(
            (mean - 0.5).abs() < 1e-6,
            "two equally likely states average to 0.5, got {mean}"
        );
    }

    #[test]
    fn long_sequences_do_not_underflow() {
        let spec = EhmmSpec::with_uniform_initial(TransitionMatrix::tridiagonal(21, 0.9));
        let num_obs = 300;
        let rows: Vec<Vec<f64>> = (0..num_obs)
            .map(|n| {
                let target = (n / 30) % 21;
                (0..21)
                    .map(|i| -0.5 * ((i as f64 - target as f64) / 0.7).powi(2))
                    .collect()
            })
            .collect();
        let gaps = vec![1u32; num_obs];
        let obs = EmissionTable::new(rows, gaps);
        let p = forward_backward(&spec, &obs);
        assert!(p.log_likelihood.is_finite());
        for row in &p.gamma {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn likelihood_prefers_the_better_fitting_prior() {
        // Observations that hop between the extreme states (two grid steps
        // apart, with gaps of 2 so the jump is reachable) should be better
        // explained by a less sticky chain than by an almost-frozen one.
        let volatile_obs = EmissionTable::new(
            vec![
                vec![-0.1, -8.0, -8.0],
                vec![-8.0, -8.0, -0.1],
                vec![-0.1, -8.0, -8.0],
                vec![-8.0, -8.0, -0.1],
            ],
            vec![0, 2, 2, 2],
        );
        let sticky = EhmmSpec::with_uniform_initial(TransitionMatrix::tridiagonal(3, 0.999));
        let mobile = EhmmSpec::with_uniform_initial(TransitionMatrix::tridiagonal(3, 0.4));
        let ll_sticky = forward_backward(&sticky, &volatile_obs).log_likelihood;
        let ll_mobile = forward_backward(&mobile, &volatile_obs).log_likelihood;
        assert!(ll_mobile > ll_sticky);
    }
}
