//! Row-stochastic transition matrices and their integer powers.

use serde::{Deserialize, Serialize};

/// A row-stochastic transition matrix over a finite state space.
///
/// `A[i][j]` is the probability of moving from state `i` to state `j` in one
/// δ-interval. The Veritas EHMM replaces the constant per-step matrix of a
/// vanilla HMM with `A^Δn`, where `Δn` is the number of δ-intervals between
/// the starts of consecutive chunks, so integer matrix powers are a core
/// operation here (computed by exponentiation-by-squaring and memoized by
/// [`TransitionPowers`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionMatrix {
    n: usize,
    /// Row-major storage, `data[i * n + j]`.
    data: Vec<f64>,
}

impl TransitionMatrix {
    /// Builds a matrix from rows, validating shape and row-stochasticity.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty, non-square, contains negative or
    /// non-finite entries, or a row does not sum to 1 (±1e-6).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n = rows.len();
        assert!(n > 0, "transition matrix must be non-empty");
        let mut data = Vec::with_capacity(n * n);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has wrong length");
            let mut sum = 0.0;
            for &p in row {
                assert!(
                    p.is_finite() && p >= 0.0,
                    "row {i} has invalid probability {p}"
                );
                sum += p;
            }
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "row {i} sums to {sum}, expected 1.0"
            );
            data.extend_from_slice(row);
        }
        Self { n, data }
    }

    /// The identity matrix (zero transitions allowed).
    pub fn identity(n: usize) -> Self {
        assert!(n > 0);
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Self { n, data }
    }

    /// Uniform transitions: every state is equally likely next.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0);
        Self {
            n,
            data: vec![1.0 / n as f64; n * n],
        }
    }

    /// The tridiagonal prior the paper uses: with probability `stay` the
    /// state is unchanged; otherwise it moves one grid step up or down
    /// (splitting the remainder evenly, with reflection at the boundaries).
    pub fn tridiagonal(n: usize, stay: f64) -> Self {
        assert!(n > 0);
        assert!((0.0..=1.0).contains(&stay));
        if n == 1 {
            return Self::identity(1);
        }
        let move_p = 1.0 - stay;
        let mut rows = vec![vec![0.0; n]; n];
        for (i, row) in rows.iter_mut().enumerate() {
            row[i] = stay;
            if i == 0 {
                row[1] += move_p;
            } else if i == n - 1 {
                row[n - 2] += move_p;
            } else {
                row[i - 1] += move_p / 2.0;
                row[i + 1] += move_p / 2.0;
            }
        }
        Self::from_rows(rows)
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Probability of moving from `i` to `j` in one step.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Matrix product `self * other`.
    pub fn multiply(&self, other: &TransitionMatrix) -> TransitionMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                let a = self.data[i * n + k];
                if a == 0.0 {
                    continue;
                }
                let other_row = &other.data[k * n..(k + 1) * n];
                let out_row = &mut data[i * n..(i + 1) * n];
                for (j, &b) in other_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        TransitionMatrix { n, data }
    }

    /// `self^k` by exponentiation-by-squaring. `k == 0` gives the identity.
    pub fn power(&self, k: u32) -> TransitionMatrix {
        let mut result = TransitionMatrix::identity(self.n);
        let mut base = self.clone();
        let mut exp = k;
        while exp > 0 {
            if exp & 1 == 1 {
                result = result.multiply(&base);
            }
            base = base.multiply(&base);
            exp >>= 1;
        }
        result
    }

    /// Checks that every row still sums to 1 within `tol` (useful after
    /// repeated multiplication).
    pub fn is_row_stochastic(&self, tol: f64) -> bool {
        (0..self.n).all(|i| (self.row(i).iter().sum::<f64>() - 1.0).abs() <= tol)
    }
}

/// Memo cache of integer powers of a transition matrix.
///
/// Chunk gaps `Δn` repeat heavily within a session (most consecutive chunks
/// are 0 or 1 intervals apart), so caching powers avoids recomputing the
/// same product for every chunk.
#[derive(Debug, Clone)]
pub struct TransitionPowers {
    base: TransitionMatrix,
    cache: std::collections::HashMap<u32, TransitionMatrix>,
}

impl TransitionPowers {
    /// Creates a cache over `base`.
    pub fn new(base: TransitionMatrix) -> Self {
        Self {
            base,
            cache: std::collections::HashMap::new(),
        }
    }

    /// The underlying one-step matrix.
    pub fn base(&self) -> &TransitionMatrix {
        &self.base
    }

    /// `base^k`, computed on first use and cached.
    pub fn power(&mut self, k: u32) -> &TransitionMatrix {
        self.cache.entry(k).or_insert_with(|| self.base.power(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_validates_stochasticity() {
        let m = TransitionMatrix::from_rows(vec![vec![0.5, 0.5], vec![0.1, 0.9]]);
        assert_eq!(m.get(0, 1), 0.5);
        assert_eq!(m.get(1, 0), 0.1);
        assert!(m.is_row_stochastic(1e-12));
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn rejects_non_stochastic_rows() {
        let _ = TransitionMatrix::from_rows(vec![vec![0.5, 0.2], vec![0.1, 0.9]]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn rejects_ragged_rows() {
        let _ = TransitionMatrix::from_rows(vec![vec![1.0], vec![0.5, 0.5]]);
    }

    #[test]
    fn identity_and_power_zero() {
        let m = TransitionMatrix::tridiagonal(5, 0.8);
        let p0 = m.power(0);
        assert_eq!(p0, TransitionMatrix::identity(5));
    }

    #[test]
    fn power_one_is_the_matrix_itself() {
        let m = TransitionMatrix::tridiagonal(4, 0.7);
        assert_eq!(m.power(1), m);
    }

    #[test]
    fn power_matches_repeated_multiplication() {
        let m = TransitionMatrix::tridiagonal(6, 0.6);
        let by_squaring = m.power(5);
        let mut by_mult = m.clone();
        for _ in 0..4 {
            by_mult = by_mult.multiply(&m);
        }
        for i in 0..6 {
            for j in 0..6 {
                assert!((by_squaring.get(i, j) - by_mult.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn powers_remain_row_stochastic() {
        let m = TransitionMatrix::tridiagonal(10, 0.85);
        for k in [0u32, 1, 2, 7, 33, 128] {
            assert!(
                m.power(k).is_row_stochastic(1e-9),
                "A^{k} lost stochasticity"
            );
        }
    }

    #[test]
    fn tridiagonal_structure() {
        let m = TransitionMatrix::tridiagonal(5, 0.8);
        assert_eq!(m.get(2, 2), 0.8);
        assert!((m.get(2, 1) - 0.1).abs() < 1e-12);
        assert!((m.get(2, 3) - 0.1).abs() < 1e-12);
        assert_eq!(m.get(2, 4), 0.0);
        // Boundary rows push all movement inward.
        assert!((m.get(0, 1) - 0.2).abs() < 1e-12);
        assert!((m.get(4, 3) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn tridiagonal_single_state_is_identity() {
        assert_eq!(
            TransitionMatrix::tridiagonal(1, 0.5),
            TransitionMatrix::identity(1)
        );
    }

    #[test]
    fn uniform_rows_are_flat() {
        let m = TransitionMatrix::uniform(4);
        assert!(m.row(2).iter().all(|&p| (p - 0.25).abs() < 1e-12));
    }

    #[test]
    fn high_powers_of_tridiagonal_approach_a_flat_distribution() {
        // The tridiagonal chain with reflection is irreducible and aperiodic
        // (stay > 0), so A^k converges to its stationary distribution.
        let m = TransitionMatrix::tridiagonal(5, 0.5);
        let p = m.power(4096);
        for j in 0..5 {
            let col: Vec<f64> = (0..5).map(|i| p.get(i, j)).collect();
            let spread = col.iter().cloned().fold(0.0_f64, f64::max)
                - col.iter().cloned().fold(1.0_f64, f64::min);
            assert!(spread < 1e-6, "column {j} has not mixed: {col:?}");
        }
    }

    #[test]
    fn powers_cache_returns_consistent_results() {
        let mut cache = TransitionPowers::new(TransitionMatrix::tridiagonal(6, 0.75));
        let direct = cache.base().power(9);
        let cached = cache.power(9).clone();
        assert_eq!(direct, cached);
        // Second lookup hits the cache and must be identical.
        assert_eq!(*cache.power(9), direct);
    }
}
