//! The shared inference workspace: memoized per-gap transition kernels and
//! the flat-buffer implementations of every EHMM algorithm.
//!
//! Profiling the original kernels showed three systematic costs, none of
//! them intrinsic to the algorithms:
//!
//! 1. **Per-step matrix clones** — every observation step cloned the cached
//!    `A^Δ` (an N×N heap copy) just to satisfy the borrow checker.
//! 2. **Repeated `ln`** — Viterbi re-took the log of every transition entry
//!    at every step, ~N²·K calls of `ln` per decode.
//! 3. **Duplicated power caches** — one abduction built three separate
//!    [`TransitionPowers`](crate::TransitionPowers) caches (Viterbi,
//!    forward–backward, scoring) for the *same* transition matrix.
//!
//! [`EhmmWorkspace`] fixes all three: each embedded gap Δ maps to one
//! immutable [`GapKernel`] holding `A^Δ`, its element-wise natural log, and
//! its bandwidth (a tridiagonal `A` makes `A^Δ` banded with bandwidth Δ, so
//! the matvecs can skip structural zeros). Kernels are built once, stored
//! behind an `Arc`, and handed out by reference count — no clones, no
//! re-derivation, and the cache is `Sync`, so one workspace can serve a
//! whole batch executor: every session inferred under the same model shares
//! the same transition and log-power tables.
//!
//! The public free functions ([`crate::viterbi`], [`crate::forward_backward`],
//! [`crate::path_log_score`], [`crate::sample_path_ffbs`]) are thin wrappers
//! that build a private single-use workspace, so existing callers keep their
//! signatures and results.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;
use rand::Rng;

use crate::dense::{normalize, StateMatrix};
use crate::forward_backward::Posteriors;
use crate::matrix::TransitionMatrix;
use crate::model::{EhmmSpec, EmissionTable};
use crate::sampler::sample_categorical;
use crate::viterbi::{safe_ln, ViterbiResult};

/// Everything inference needs about one embedded gap Δ, derived once:
/// the linear transition matrix `A^Δ`, its element-wise natural log
/// (`−∞` at structural zeros), and its bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct GapKernel {
    matrix: TransitionMatrix,
    /// Row-major `ln A^Δ[i][j]`; `NEG_INFINITY` where the entry is zero.
    log: Vec<f64>,
    /// Largest `|i − j|` with a non-zero entry. For the paper's tridiagonal
    /// prior this is `min(Δ, N−1)`, which is what lets the kernels skip the
    /// structural zeros of `A^Δ`.
    bandwidth: usize,
}

impl GapKernel {
    fn new(matrix: TransitionMatrix) -> Self {
        let n = matrix.num_states();
        let mut log = vec![f64::NEG_INFINITY; n * n];
        let mut bandwidth = 0usize;
        for i in 0..n {
            for j in 0..n {
                let p = matrix.get(i, j);
                if p > 0.0 {
                    log[i * n + j] = p.ln();
                    bandwidth = bandwidth.max(i.abs_diff(j));
                }
            }
        }
        Self {
            matrix,
            log,
            bandwidth,
        }
    }

    /// The linear-space transition matrix `A^Δ`.
    pub fn matrix(&self) -> &TransitionMatrix {
        &self.matrix
    }

    /// Row `i` of `ln A^Δ` (`−∞` at zeros).
    pub fn log_row(&self, i: usize) -> &[f64] {
        let n = self.matrix.num_states();
        &self.log[i * n..(i + 1) * n]
    }

    /// Largest `|i − j|` with `A^Δ[i][j] > 0`.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// Column (or row) indices within the bandwidth of `center`, clamped to
    /// `0..num_states`. Entries outside this range are structurally zero.
    #[inline]
    pub fn band(&self, center: usize, num_states: usize) -> std::ops::Range<usize> {
        center.saturating_sub(self.bandwidth)..num_states.min(center + self.bandwidth + 1)
    }
}

/// A shared, thread-safe inference workspace for one [`EhmmSpec`]: the
/// memoized per-gap [`GapKernel`]s plus the flat-buffer algorithm
/// implementations that consume them.
///
/// Create one per model specification and reuse it for every decode,
/// smoothing pass, path score, and FFBS draw over that model — across
/// threads if desired (`&self` everywhere; the kernel cache is interior).
pub struct EhmmWorkspace {
    spec: EhmmSpec,
    kernels: RwLock<HashMap<u32, Arc<GapKernel>>>,
}

impl fmt::Debug for EhmmWorkspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EhmmWorkspace")
            .field("num_states", &self.spec.num_states())
            .field("cached_gaps", &self.cached_gaps())
            .finish()
    }
}

impl EhmmWorkspace {
    /// A workspace over `spec` with an empty kernel cache.
    pub fn new(spec: EhmmSpec) -> Self {
        Self {
            spec,
            kernels: RwLock::new(HashMap::new()),
        }
    }

    /// The hidden-chain specification this workspace serves.
    pub fn spec(&self) -> &EhmmSpec {
        &self.spec
    }

    /// Number of distinct gaps whose kernels have been materialized.
    pub fn cached_gaps(&self) -> usize {
        self.kernels.read().len()
    }

    /// A snapshot of every materialized kernel as `(gap, A^Δ)` pairs,
    /// sorted by gap — deterministic input for persistence. Only the
    /// linear matrix is exported: the log table and the bandwidth are
    /// derived from it bit-deterministically on [`Self::preload_kernel`],
    /// so they never need to travel.
    pub fn export_kernels(&self) -> Vec<(u32, TransitionMatrix)> {
        let kernels = self.kernels.read();
        let mut out: Vec<(u32, TransitionMatrix)> = kernels
            .iter()
            .map(|(&gap, kernel)| (gap, kernel.matrix().clone()))
            .collect();
        out.sort_unstable_by_key(|&(gap, _)| gap);
        out
    }

    /// Installs a previously exported `A^Δ` for `gap`, skipping the
    /// matrix-power computation [`Self::kernel`] would run. The log table
    /// and bandwidth are re-derived from the matrix (cheap and
    /// deterministic, so a preloaded kernel is indistinguishable from a
    /// computed one). A matrix whose state count does not match the spec
    /// is rejected, and a gap that is already materialized is left
    /// untouched — both sides hold the same deterministic power. Returns
    /// whether the kernel was installed.
    pub fn preload_kernel(&self, gap: u32, matrix: TransitionMatrix) -> bool {
        if matrix.num_states() != self.spec.num_states() {
            return false;
        }
        let mut kernels = self.kernels.write();
        if kernels.contains_key(&gap) {
            return false;
        }
        kernels.insert(gap, Arc::new(GapKernel::new(matrix)));
        true
    }

    /// The kernel for gap Δ — `A^Δ`, `ln A^Δ`, bandwidth — computed on
    /// first use and shared thereafter (chunk gaps repeat heavily within
    /// and across sessions).
    pub fn kernel(&self, gap: u32) -> Arc<GapKernel> {
        if let Some(kernel) = self.kernels.read().get(&gap) {
            return kernel.clone();
        }
        let mut kernels = self.kernels.write();
        kernels
            .entry(gap)
            .or_insert_with(|| Arc::new(GapKernel::new(self.spec.transition().power(gap))))
            .clone()
    }

    /// Resolves the kernel of every step's gap once, so the passes below
    /// index an `Arc` slice instead of hitting the shared map per step.
    /// `step_kernels[n - 1]` transports observation `n − 1` to `n`.
    fn step_kernels(&self, obs: &EmissionTable) -> Vec<Arc<GapKernel>> {
        (1..obs.num_obs())
            .map(|n| self.kernel(obs.gap(n)))
            .collect()
    }

    fn check_states(&self, obs: &EmissionTable) {
        assert_eq!(
            self.spec.num_states(),
            obs.num_states(),
            "spec and emission table disagree on the state count"
        );
    }

    /// Gap-aware Viterbi decoding (paper Algorithm 3) over precomputed
    /// log-kernels: no per-step `ln`, no matrix clones, banded maximization.
    pub fn viterbi(&self, obs: &EmissionTable) -> ViterbiResult {
        self.check_states(obs);
        let num_states = self.spec.num_states();
        let num_obs = obs.num_obs();
        let step_kernels = self.step_kernels(obs);

        // delta[i]: best log-score of any path ending in state i at the
        // current observation; psi is the flat backpointer table (row 0
        // unused).
        let mut delta: Vec<f64> = self
            .spec
            .initial()
            .iter()
            .zip(obs.log_row(0))
            .map(|(&p, &e)| safe_ln(p) + e)
            .collect();
        let mut next = vec![0.0_f64; num_states];
        let mut psi = vec![0usize; num_obs * num_states];

        for n in 1..num_obs {
            let kernel = &step_kernels[n - 1];
            let emissions = obs.log_row(n);
            let back = &mut psi[n * num_states..(n + 1) * num_states];
            for (j, (next_j, back_j)) in next.iter_mut().zip(back.iter_mut()).enumerate() {
                let mut best = f64::NEG_INFINITY;
                let mut best_i = 0usize;
                for i in kernel.band(j, num_states) {
                    let score = delta[i] + kernel.log[i * num_states + j];
                    if score > best {
                        best = score;
                        best_i = i;
                    }
                }
                *next_j = best + emissions[j];
                *back_j = best_i;
            }
            std::mem::swap(&mut delta, &mut next);
        }

        // Backtrack from the best final state.
        let (mut best_state, best_score) =
            delta
                .iter()
                .enumerate()
                .fold((0usize, f64::NEG_INFINITY), |(bi, bs), (i, &s)| {
                    if s > bs {
                        (i, s)
                    } else {
                        (bi, bs)
                    }
                });
        let mut path = vec![0usize; num_obs];
        path[num_obs - 1] = best_state;
        for n in (1..num_obs).rev() {
            best_state = psi[n * num_states + best_state];
            path[n - 1] = best_state;
        }
        ViterbiResult {
            path,
            log_likelihood: best_score,
        }
    }

    /// The scaled forward filter shared by smoothing and FFBS sampling:
    /// fills the flat emission table and runs the α recursion as a
    /// row-major scatter over each kernel's band — identical floating-point
    /// results to the dense column-gather, at a fraction of the memory
    /// traffic. Returns `(emissions, alpha, log_likelihood)`.
    fn forward_filter(
        &self,
        obs: &EmissionTable,
        step_kernels: &[Arc<GapKernel>],
    ) -> (StateMatrix, StateMatrix, f64) {
        let num_states = self.spec.num_states();
        let num_obs = obs.num_obs();

        // Scaled linear emissions, one flat row per observation.
        let mut emissions = StateMatrix::zeros(num_obs, num_states);
        for n in 0..num_obs {
            obs.scaled_linear_row_into(n, emissions.row_mut(n));
        }

        let mut alpha = StateMatrix::zeros(num_obs, num_states);
        let mut log_likelihood = 0.0_f64;
        for (slot, (&p, &e)) in alpha
            .row_mut(0)
            .iter_mut()
            .zip(self.spec.initial().iter().zip(emissions.row(0)))
        {
            *slot = p * e;
        }
        log_likelihood += normalize(alpha.row_mut(0));
        for n in 1..num_obs {
            let kernel = &step_kernels[n - 1];
            let (prev, cur) = alpha.prev_and_current(n);
            for (i, &p) in prev.iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                let row = kernel.matrix.row(i);
                for j in kernel.band(i, num_states) {
                    cur[j] += p * row[j];
                }
            }
            for (c, &e) in cur.iter_mut().zip(emissions.row(n)) {
                *c *= e;
            }
            log_likelihood += normalize(cur);
        }
        (emissions, alpha, log_likelihood)
    }

    /// Scaled forward–backward smoothing (paper Algorithm 2) over flat
    /// buffers and banded matvecs.
    pub fn forward_backward(&self, obs: &EmissionTable) -> Posteriors {
        self.check_states(obs);
        let num_states = self.spec.num_states();
        let num_obs = obs.num_obs();
        let step_kernels = self.step_kernels(obs);
        let (emissions, alpha, log_likelihood) = self.forward_filter(obs, &step_kernels);

        // Backward pass, scaled by per-step normalization.
        let mut beta = StateMatrix::filled(num_obs, num_states, 1.0);
        for n in (0..num_obs - 1).rev() {
            let kernel = &step_kernels[n];
            let (cur, next) = beta.current_and_next(n);
            let em_next = emissions.row(n + 1);
            for (i, slot) in cur.iter_mut().enumerate() {
                let row = kernel.matrix.row(i);
                let mut acc = 0.0;
                for j in kernel.band(i, num_states) {
                    acc += row[j] * em_next[j] * next[j];
                }
                *slot = acc;
            }
            normalize(cur);
        }

        // Marginals.
        let mut gamma = StateMatrix::zeros(num_obs, num_states);
        for n in 0..num_obs {
            let row = gamma.row_mut(n);
            for (slot, (&a, &b)) in row.iter_mut().zip(alpha.row(n).iter().zip(beta.row(n))) {
                *slot = a * b;
            }
            normalize(row);
        }

        // Pairwise posteriors, one flat K×K matrix per step.
        let mut xi = Vec::with_capacity(num_obs.saturating_sub(1));
        for n in 0..num_obs.saturating_sub(1) {
            let kernel = &step_kernels[n];
            let alpha_n = alpha.row(n);
            let em_next = emissions.row(n + 1);
            let beta_next = beta.row(n + 1);
            let mut pair = StateMatrix::zeros(num_states, num_states);
            let mut total = 0.0;
            for (i, &a) in alpha_n.iter().enumerate() {
                let row = kernel.matrix.row(i);
                let out = pair.row_mut(i);
                for j in kernel.band(i, num_states) {
                    let v = a * row[j] * em_next[j] * beta_next[j];
                    out[j] = v;
                    total += v;
                }
            }
            if total > 0.0 {
                for v in pair.as_mut_slice() {
                    *v /= total;
                }
            } else {
                // Degenerate step: fall back to an uninformative pair
                // posterior.
                let flat = 1.0 / (num_states * num_states) as f64;
                for v in pair.as_mut_slice() {
                    *v = flat;
                }
            }
            xi.push(pair);
        }

        Posteriors {
            gamma,
            xi,
            log_likelihood,
        }
    }

    /// Log-score of an arbitrary state path under the model, read straight
    /// from the memoized log-kernels.
    pub fn path_log_score(&self, obs: &EmissionTable, path: &[usize]) -> f64 {
        self.check_states(obs);
        assert_eq!(path.len(), obs.num_obs());
        let num_states = self.spec.num_states();
        let mut score = safe_ln(self.spec.initial()[path[0]]) + obs.log_row(0)[path[0]];
        for n in 1..path.len() {
            let kernel = self.kernel(obs.gap(n));
            score += kernel.log[path[n - 1] * num_states + path[n]] + obs.log_row(n)[path[n]];
        }
        score
    }

    /// Exact forward-filtering backward-sampling over the shared kernels;
    /// see [`crate::sample_path_ffbs`] for the semantics.
    pub fn sample_path_ffbs<R: Rng + ?Sized>(
        &self,
        obs: &EmissionTable,
        rng: &mut R,
    ) -> Vec<usize> {
        self.check_states(obs);
        let num_states = self.spec.num_states();
        let num_obs = obs.num_obs();
        let step_kernels = self.step_kernels(obs);
        let (_emissions, alpha, _log_likelihood) = self.forward_filter(obs, &step_kernels);

        // Backward sample. Weights outside the kernel band are structural
        // zeros, so only the band is filled — the categorical draw sees the
        // same full-length weight vector as the dense implementation.
        let mut path = vec![0usize; num_obs];
        path[num_obs - 1] = sample_categorical(alpha.row(num_obs - 1), rng);
        let mut weights = vec![0.0_f64; num_states];
        for n in (0..num_obs - 1).rev() {
            let kernel = &step_kernels[n];
            let next_state = path[n + 1];
            weights.fill(0.0);
            let alpha_n = alpha.row(n);
            for i in kernel.band(next_state, num_states) {
                weights[i] = alpha_n[i] * kernel.matrix.get(i, next_state);
            }
            path[n] = sample_categorical(&weights, rng);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::TransitionMatrix;

    fn spec(n: usize, stay: f64) -> EhmmSpec {
        EhmmSpec::with_uniform_initial(TransitionMatrix::tridiagonal(n, stay))
    }

    #[test]
    fn kernels_are_memoized_and_shared() {
        let ws = EhmmWorkspace::new(spec(5, 0.8));
        assert_eq!(ws.cached_gaps(), 0);
        let a = ws.kernel(3);
        let b = ws.kernel(3);
        assert!(Arc::ptr_eq(&a, &b), "same gap must share one kernel");
        assert_eq!(ws.cached_gaps(), 1);
        let _ = ws.kernel(1);
        assert_eq!(ws.cached_gaps(), 2);
    }

    #[test]
    fn kernel_matches_direct_power_and_logs() {
        let ws = EhmmWorkspace::new(spec(6, 0.7));
        let kernel = ws.kernel(4);
        let direct = ws.spec().transition().power(4);
        assert_eq!(kernel.matrix(), &direct);
        for i in 0..6 {
            for j in 0..6 {
                let expected = safe_ln(direct.get(i, j));
                assert_eq!(kernel.log_row(i)[j], expected, "log[{i}][{j}]");
            }
        }
    }

    #[test]
    fn tridiagonal_bandwidth_grows_with_the_gap() {
        let ws = EhmmWorkspace::new(spec(9, 0.8));
        assert_eq!(ws.kernel(0).bandwidth(), 0, "A^0 = I");
        assert_eq!(ws.kernel(1).bandwidth(), 1);
        assert_eq!(ws.kernel(3).bandwidth(), 3);
        assert_eq!(ws.kernel(100).bandwidth(), 8, "bandwidth caps at N-1");
    }

    #[test]
    fn band_covers_exactly_the_nonzero_entries() {
        let ws = EhmmWorkspace::new(spec(7, 0.75));
        for gap in [0u32, 1, 2, 5, 9] {
            let kernel = ws.kernel(gap);
            for i in 0..7 {
                let band = kernel.band(i, 7);
                for j in 0..7 {
                    let p = kernel.matrix().get(i, j);
                    if p > 0.0 {
                        assert!(
                            band.contains(&j),
                            "gap {gap}: nonzero ({i},{j}) outside band"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn identity_like_rows_keep_full_band_semantics() {
        // A dense (uniform) matrix has bandwidth N-1: the band must cover
        // every column for every row.
        let ws = EhmmWorkspace::new(EhmmSpec::with_uniform_initial(TransitionMatrix::uniform(4)));
        let kernel = ws.kernel(1);
        assert_eq!(kernel.bandwidth(), 3);
        assert_eq!(kernel.band(0, 4), 0..4);
        assert_eq!(kernel.band(3, 4), 0..4);
    }

    #[test]
    fn workspace_is_shareable_across_threads() {
        let ws = Arc::new(EhmmWorkspace::new(spec(11, 0.8)));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ws = Arc::clone(&ws);
                scope.spawn(move || {
                    for gap in 0..8u32 {
                        let kernel = ws.kernel(gap);
                        assert!(kernel.matrix().is_row_stochastic(1e-9));
                    }
                });
            }
        });
        assert_eq!(ws.cached_gaps(), 8);
    }

    #[test]
    fn exported_kernels_preload_bit_identically() {
        let ws = EhmmWorkspace::new(spec(7, 0.8));
        for gap in [5u32, 1, 3] {
            let _ = ws.kernel(gap);
        }
        let exported = ws.export_kernels();
        assert_eq!(
            exported.iter().map(|&(g, _)| g).collect::<Vec<_>>(),
            vec![1, 3, 5],
            "export must be gap-sorted"
        );

        let restored = EhmmWorkspace::new(spec(7, 0.8));
        for (gap, matrix) in exported {
            assert!(restored.preload_kernel(gap, matrix));
        }
        assert_eq!(restored.cached_gaps(), 3);
        for gap in [1u32, 3, 5] {
            let a = ws.kernel(gap);
            let b = restored.kernel(gap);
            assert_eq!(a.matrix(), b.matrix(), "gap {gap}: matrices");
            assert_eq!(a.bandwidth(), b.bandwidth(), "gap {gap}: bandwidth");
            for i in 0..7 {
                let (ra, rb) = (a.log_row(i), b.log_row(i));
                let bits = |r: &[f64]| r.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(ra), bits(rb), "gap {gap}: log row {i}");
            }
        }

        // Mismatched state counts and already-present gaps are refused.
        let other = EhmmWorkspace::new(spec(4, 0.8));
        assert!(!other.preload_kernel(2, ws.kernel(2).matrix().clone()));
        assert!(!restored.preload_kernel(1, ws.kernel(1).matrix().clone()));
    }

    #[test]
    fn debug_formatting_reports_cache_size() {
        let ws = EhmmWorkspace::new(spec(3, 0.5));
        let _ = ws.kernel(2);
        let rendered = format!("{ws:?}");
        assert!(rendered.contains("cached_gaps: 1"), "{rendered}");
    }
}
