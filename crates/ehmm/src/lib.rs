//! Embedded Hidden Markov Model machinery for Veritas.
//!
//! A standard HMM attaches exactly one observation to every hidden state and
//! uses a constant per-step transition matrix. The Veritas EHMM departs from
//! that in two ways (paper §3.2):
//!
//! 1. **Embedded transitions** — hidden states live on a regular δ-interval
//!    grid, but observations (chunk downloads) occur irregularly: a state may
//!    emit zero, one, or several observations. Transitions between
//!    consecutive *observations* therefore use `A^{Δ_n}`, the one-step matrix
//!    raised to the integer gap between chunk-start intervals.
//! 2. **Domain-specific emissions** — the emission density is not a
//!    parametric family fit to data but a physical model (the TCP throughput
//!    estimator `f` plus Gaussian noise), supplied by the caller as a
//!    precomputed [`EmissionTable`].
//!
//! The crate is deliberately generic: nothing here knows about bandwidth or
//! TCP, so the same machinery is reusable for other embedded-observation
//! inference problems. The Veritas-specific wiring lives in the `veritas`
//! crate.
//!
//! Provided algorithms: the gap-aware Viterbi decoder ([`viterbi`], paper
//! Algorithm 3), the scaled forward–backward smoother ([`forward_backward`],
//! paper Algorithm 2), the posterior capacity sampler ([`sample_path`],
//! paper Algorithm 1) plus an exact FFBS alternative
//! ([`sample_path_ffbs`]), and the off-period interpolation
//! ([`interpolate_full_path`]).
//!
//! All inference kernels are implemented over an [`EhmmWorkspace`]: a
//! shareable, thread-safe cache of per-gap transition kernels (`A^Δ`, its
//! element-wise log, and its bandwidth) plus flat row-major buffers
//! ([`StateMatrix`]) for every intermediate. The free functions above are
//! thin single-use wrappers; batch callers should build one workspace per
//! model and reuse it so every decode shares the same memoized kernels.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod dense;
mod forward_backward;
mod interpolate;
mod matrix;
mod model;
#[cfg(test)]
mod reference;
mod sampler;
mod viterbi;
mod workspace;

pub use dense::StateMatrix;
pub use forward_backward::{forward_backward, Posteriors};
pub use interpolate::{interpolate_full_path, states_to_values};
pub use matrix::{TransitionMatrix, TransitionPowers};
pub use model::{EhmmSpec, EmissionTable};
pub use sampler::{sample_path, sample_path_ffbs, sample_paths};
pub use viterbi::{path_log_score, viterbi, ViterbiResult};
pub use workspace::{EhmmWorkspace, GapKernel};
