//! Embedded Hidden Markov Model machinery for Veritas.
//!
//! A standard HMM attaches exactly one observation to every hidden state and
//! uses a constant per-step transition matrix. The Veritas EHMM departs from
//! that in two ways (paper §3.2):
//!
//! 1. **Embedded transitions** — hidden states live on a regular δ-interval
//!    grid, but observations (chunk downloads) occur irregularly: a state may
//!    emit zero, one, or several observations. Transitions between
//!    consecutive *observations* therefore use `A^{Δ_n}`, the one-step matrix
//!    raised to the integer gap between chunk-start intervals.
//! 2. **Domain-specific emissions** — the emission density is not a
//!    parametric family fit to data but a physical model (the TCP throughput
//!    estimator `f` plus Gaussian noise), supplied by the caller as a
//!    precomputed [`EmissionTable`].
//!
//! The crate is deliberately generic: nothing here knows about bandwidth or
//! TCP, so the same machinery is reusable for other embedded-observation
//! inference problems. The Veritas-specific wiring lives in the `veritas`
//! crate.
//!
//! Provided algorithms: the gap-aware Viterbi decoder ([`viterbi`], paper
//! Algorithm 3), the scaled forward–backward smoother ([`forward_backward`],
//! paper Algorithm 2), the posterior capacity sampler ([`sample_path`],
//! paper Algorithm 1) plus an exact FFBS alternative
//! ([`sample_path_ffbs`]), and the off-period interpolation
//! ([`interpolate_full_path`]).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod forward_backward;
mod interpolate;
mod matrix;
mod model;
mod sampler;
mod viterbi;

pub use forward_backward::{forward_backward, Posteriors};
pub use interpolate::{interpolate_full_path, states_to_values};
pub use matrix::{TransitionMatrix, TransitionPowers};
pub use model::{EhmmSpec, EmissionTable};
pub use sampler::{sample_path, sample_path_ffbs, sample_paths};
pub use viterbi::{path_log_score, viterbi, ViterbiResult};
