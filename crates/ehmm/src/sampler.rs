//! Posterior capacity-path sampling (paper Algorithm 1) plus an exact
//! forward-filtering backward-sampling variant used as an ablation.

use rand::Rng;

use crate::forward_backward::Posteriors;
use crate::model::{EhmmSpec, EmissionTable};
use crate::viterbi::ViterbiResult;
use crate::workspace::EhmmWorkspace;

/// Samples one hidden-state path using the paper's capacity sampler
/// (Algorithm 1): the last state is anchored at the Viterbi solution, then
/// earlier states are drawn backwards from the pairwise posterior `Γ`
/// conditioned on the state already drawn for the next chunk.
pub fn sample_path<R: Rng + ?Sized>(
    posteriors: &Posteriors,
    viterbi: &ViterbiResult,
    rng: &mut R,
) -> Vec<usize> {
    let num_obs = posteriors.gamma.len();
    assert_eq!(viterbi.path.len(), num_obs, "viterbi path length mismatch");
    let num_states = posteriors.gamma.cols();
    let mut path = vec![0usize; num_obs];
    path[num_obs - 1] = viterbi.path[num_obs - 1];
    let mut weights = vec![0.0_f64; num_states];
    for n in (0..num_obs - 1).rev() {
        let next_state = path[n + 1];
        // ξ_{n,i} = Γ[n][i][next_state]
        let pair = &posteriors.xi[n];
        for (i, w) in weights.iter_mut().enumerate() {
            *w = pair[i][next_state];
        }
        path[n] = sample_categorical(&weights, rng);
    }
    path
}

/// Draws `k` independent sample paths with Algorithm 1.
pub fn sample_paths<R: Rng + ?Sized>(
    posteriors: &Posteriors,
    viterbi: &ViterbiResult,
    k: usize,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    (0..k)
        .map(|_| sample_path(posteriors, viterbi, rng))
        .collect()
}

/// Exact forward-filtering backward-sampling: draws the final state from its
/// filtered marginal and each earlier state from
/// `P(C_n | C_{n+1}, Y_{1:n}) ∝ α_n(i) · A^{Δ_{n+1}}(i, j)`.
///
/// This is the textbook-exact posterior sampler; the paper's Algorithm 1 is
/// an approximation that anchors the final state at the Viterbi solution and
/// reuses the smoothed pair posteriors. Keeping both lets the benchmark
/// suite quantify the difference (`DESIGN.md`, ablations).
///
/// Convenience wrapper building a single-use [`EhmmWorkspace`]; repeated
/// draws over one spec should go through
/// [`EhmmWorkspace::sample_path_ffbs`].
pub fn sample_path_ffbs<R: Rng + ?Sized>(
    spec: &EhmmSpec,
    obs: &EmissionTable,
    rng: &mut R,
) -> Vec<usize> {
    EhmmWorkspace::new(spec.clone()).sample_path_ffbs(obs, rng)
}

pub(crate) fn sample_categorical<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        // Degenerate weights: fall back to a uniform draw.
        return rng.gen_range(0..weights.len());
    }
    let mut threshold = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        threshold -= w;
        if threshold <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward_backward::forward_backward;
    use crate::matrix::TransitionMatrix;
    use crate::viterbi::viterbi;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec3() -> EhmmSpec {
        EhmmSpec::with_uniform_initial(TransitionMatrix::tridiagonal(3, 0.7))
    }

    fn peaked_obs() -> EmissionTable {
        EmissionTable::new(
            vec![
                vec![-0.1, -10.0, -10.0],
                vec![-10.0, -0.1, -10.0],
                vec![-10.0, -0.1, -10.0],
                vec![-10.0, -10.0, -0.1],
            ],
            vec![0, 1, 1, 1],
        )
    }

    fn ambiguous_obs() -> EmissionTable {
        EmissionTable::new(
            vec![
                vec![-0.1, -10.0, -10.0],
                vec![-1.0, -1.0, -1.0],
                vec![-1.0, -1.0, -1.0],
                vec![-10.0, -10.0, -0.1],
            ],
            vec![0, 1, 1, 1],
        )
    }

    #[test]
    fn samples_follow_peaked_posteriors() {
        let spec = spec3();
        let obs = peaked_obs();
        let p = forward_backward(&spec, &obs);
        let v = viterbi(&spec, &obs);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let path = sample_path(&p, &v, &mut rng);
            assert_eq!(path, vec![0, 1, 1, 2]);
        }
    }

    #[test]
    fn sampled_states_are_always_in_range() {
        let spec = spec3();
        let obs = ambiguous_obs();
        let p = forward_backward(&spec, &obs);
        let v = viterbi(&spec, &obs);
        let mut rng = StdRng::seed_from_u64(2);
        for path in sample_paths(&p, &v, 50, &mut rng) {
            assert_eq!(path.len(), obs.num_obs());
            assert!(path.iter().all(|&s| s < 3));
        }
    }

    #[test]
    fn ambiguous_regions_produce_diverse_samples() {
        let spec = spec3();
        let obs = ambiguous_obs();
        let p = forward_backward(&spec, &obs);
        let v = viterbi(&spec, &obs);
        let mut rng = StdRng::seed_from_u64(3);
        let samples = sample_paths(&p, &v, 200, &mut rng);
        // The two endpoints are pinned; the middle should vary across draws.
        let middle_states: std::collections::BTreeSet<usize> =
            samples.iter().map(|s| s[1]).collect();
        assert!(
            middle_states.len() >= 2,
            "ambiguous middle chunk should not always get the same state"
        );
        // And every sample still honors the pinned endpoints.
        assert!(samples.iter().all(|s| s[0] == 0 && s[3] == 2));
    }

    #[test]
    fn sampling_frequencies_track_the_pair_posterior() {
        let spec = spec3();
        let obs = ambiguous_obs();
        let p = forward_backward(&spec, &obs);
        let v = viterbi(&spec, &obs);
        let mut rng = StdRng::seed_from_u64(4);
        let samples = sample_paths(&p, &v, 4000, &mut rng);
        // Empirical distribution of state at n=2 conditioned on state 1 at
        // n=3 ... but n=3 is pinned to 2 (Viterbi). The sampler draws state
        // at n=2 from Γ[2][·][2] normalized; compare empirical frequencies.
        let weights: Vec<f64> = (0..3).map(|i| p.xi[2][i][2]).collect();
        let z: f64 = weights.iter().sum();
        let expected: Vec<f64> = weights.iter().map(|w| w / z).collect();
        let mut counts = [0.0_f64; 3];
        for s in &samples {
            counts[s[2]] += 1.0;
        }
        for c in counts.iter_mut() {
            *c /= samples.len() as f64;
        }
        for i in 0..3 {
            assert!(
                (counts[i] - expected[i]).abs() < 0.03,
                "state {i}: empirical {} vs posterior {}",
                counts[i],
                expected[i]
            );
        }
    }

    #[test]
    fn sampler_is_deterministic_given_the_rng_seed() {
        let spec = spec3();
        let obs = ambiguous_obs();
        let p = forward_backward(&spec, &obs);
        let v = viterbi(&spec, &obs);
        let a = sample_paths(&p, &v, 10, &mut StdRng::seed_from_u64(9));
        let b = sample_paths(&p, &v, 10, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn ffbs_agrees_with_algorithm_one_on_peaked_posteriors() {
        let spec = spec3();
        let obs = peaked_obs();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let path = sample_path_ffbs(&spec, &obs, &mut rng);
            assert_eq!(path, vec![0, 1, 1, 2]);
        }
    }

    #[test]
    fn ffbs_respects_zero_gap_constraint() {
        let spec = spec3();
        let obs = EmissionTable::new(
            vec![vec![-0.1, -10.0, -10.0], vec![-10.0, -10.0, -0.1]],
            vec![0, 0],
        );
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let path = sample_path_ffbs(&spec, &obs, &mut rng);
            assert_eq!(path[0], path[1], "a zero gap cannot change state");
        }
    }

    #[test]
    fn categorical_sampler_handles_degenerate_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        let idx = sample_categorical(&[0.0, 0.0, 0.0], &mut rng);
        assert!(idx < 3);
        let idx = sample_categorical(&[0.0, 5.0, 0.0], &mut rng);
        assert_eq!(idx, 1);
    }
}
