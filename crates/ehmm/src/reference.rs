//! Naive reference implementations of the EHMM kernels, kept verbatim from
//! before the flat-buffer/workspace optimization, plus differential
//! property tests proving the optimized kernels match them.
//!
//! These are compiled only under `#[cfg(test)]`: they are the executable
//! specification the hot path is checked against, not shipped code. Each
//! function mirrors the original implementation exactly — per-step
//! `powers.power(..).clone()`, nested `Vec<Vec<f64>>` buffers, `safe_ln`
//! per transition entry — so any divergence introduced by the banded,
//! log-memoized kernels is caught here.

use rand::Rng;

use crate::matrix::TransitionPowers;
use crate::model::{EhmmSpec, EmissionTable};
use crate::sampler::sample_categorical;
use crate::viterbi::{safe_ln, ViterbiResult};

/// Posteriors in the pre-optimization nested-`Vec` layout.
pub struct NaivePosteriors {
    pub gamma: Vec<Vec<f64>>,
    pub xi: Vec<Vec<Vec<f64>>>,
    pub log_likelihood: f64,
}

/// The original gap-aware Viterbi decoder (per-step clone + `safe_ln`).
pub fn naive_viterbi(spec: &EhmmSpec, obs: &EmissionTable) -> ViterbiResult {
    assert_eq!(spec.num_states(), obs.num_states());
    let num_states = spec.num_states();
    let num_obs = obs.num_obs();
    let mut powers = TransitionPowers::new(spec.transition().clone());

    let mut delta: Vec<f64> = spec
        .initial()
        .iter()
        .zip(obs.log_row(0))
        .map(|(&p, &e)| safe_ln(p) + e)
        .collect();
    let mut psi: Vec<Vec<usize>> = Vec::with_capacity(num_obs);
    psi.push(vec![0; num_states]);

    for n in 1..num_obs {
        let a = powers.power(obs.gap(n)).clone();
        let emissions = obs.log_row(n);
        let mut next = vec![f64::NEG_INFINITY; num_states];
        let mut back = vec![0usize; num_states];
        for j in 0..num_states {
            let mut best = f64::NEG_INFINITY;
            let mut best_i = 0usize;
            for i in 0..num_states {
                let score = delta[i] + safe_ln(a.get(i, j));
                if score > best {
                    best = score;
                    best_i = i;
                }
            }
            next[j] = best + emissions[j];
            back[j] = best_i;
        }
        delta = next;
        psi.push(back);
    }

    let (mut best_state, best_score) =
        delta
            .iter()
            .enumerate()
            .fold((0usize, f64::NEG_INFINITY), |(bi, bs), (i, &s)| {
                if s > bs {
                    (i, s)
                } else {
                    (bi, bs)
                }
            });
    let mut path = vec![0usize; num_obs];
    path[num_obs - 1] = best_state;
    for n in (1..num_obs).rev() {
        best_state = psi[n][best_state];
        path[n - 1] = best_state;
    }
    ViterbiResult {
        path,
        log_likelihood: best_score,
    }
}

/// The original scaled forward–backward pass (per-step clones, nested
/// buffers).
pub fn naive_forward_backward(spec: &EhmmSpec, obs: &EmissionTable) -> NaivePosteriors {
    assert_eq!(spec.num_states(), obs.num_states());
    let num_states = spec.num_states();
    let num_obs = obs.num_obs();
    let mut powers = TransitionPowers::new(spec.transition().clone());

    let emissions: Vec<Vec<f64>> = (0..num_obs).map(|n| obs.scaled_linear_row(n)).collect();
    let step_matrices: Vec<usize> = (0..num_obs).map(|n| obs.gap(n) as usize).collect();

    let mut alpha = vec![vec![0.0_f64; num_states]; num_obs];
    let mut log_likelihood = 0.0_f64;
    for i in 0..num_states {
        alpha[0][i] = spec.initial()[i] * emissions[0][i];
    }
    log_likelihood += normalize(&mut alpha[0]);
    for n in 1..num_obs {
        let a = powers.power(step_matrices[n] as u32).clone();
        let (prev, rest) = alpha.split_at_mut(n);
        let prev = &prev[n - 1];
        let cur = &mut rest[0];
        for j in 0..num_states {
            let mut acc = 0.0;
            for i in 0..num_states {
                acc += prev[i] * a.get(i, j);
            }
            cur[j] = acc * emissions[n][j];
        }
        log_likelihood += normalize(cur);
    }

    let mut beta = vec![vec![1.0_f64; num_states]; num_obs];
    for n in (0..num_obs - 1).rev() {
        let a = powers.power(step_matrices[n + 1] as u32).clone();
        let mut row = vec![0.0_f64; num_states];
        for i in 0..num_states {
            let mut acc = 0.0;
            for j in 0..num_states {
                acc += a.get(i, j) * emissions[n + 1][j] * beta[n + 1][j];
            }
            row[i] = acc;
        }
        normalize(&mut row);
        beta[n] = row;
    }

    let mut gamma = vec![vec![0.0_f64; num_states]; num_obs];
    for n in 0..num_obs {
        for i in 0..num_states {
            gamma[n][i] = alpha[n][i] * beta[n][i];
        }
        normalize(&mut gamma[n]);
    }

    let mut xi = Vec::with_capacity(num_obs.saturating_sub(1));
    for n in 0..num_obs.saturating_sub(1) {
        let a = powers.power(step_matrices[n + 1] as u32).clone();
        let mut pair = vec![vec![0.0_f64; num_states]; num_states];
        let mut total = 0.0;
        for i in 0..num_states {
            for j in 0..num_states {
                let v = alpha[n][i] * a.get(i, j) * emissions[n + 1][j] * beta[n + 1][j];
                pair[i][j] = v;
                total += v;
            }
        }
        if total > 0.0 {
            for row in &mut pair {
                for v in row.iter_mut() {
                    *v /= total;
                }
            }
        } else {
            let flat = 1.0 / (num_states * num_states) as f64;
            for row in &mut pair {
                for v in row.iter_mut() {
                    *v = flat;
                }
            }
        }
        xi.push(pair);
    }

    NaivePosteriors {
        gamma,
        xi,
        log_likelihood,
    }
}

/// The original path scorer (fresh powers cache, `safe_ln` per step).
pub fn naive_path_log_score(spec: &EhmmSpec, obs: &EmissionTable, path: &[usize]) -> f64 {
    assert_eq!(path.len(), obs.num_obs());
    let mut powers = TransitionPowers::new(spec.transition().clone());
    let mut score = safe_ln(spec.initial()[path[0]]) + obs.log_row(0)[path[0]];
    for n in 1..path.len() {
        let a = powers.power(obs.gap(n));
        score += safe_ln(a.get(path[n - 1], path[n])) + obs.log_row(n)[path[n]];
    }
    score
}

/// The original FFBS sampler (per-step clones, dense weight vectors).
pub fn naive_sample_path_ffbs<R: Rng + ?Sized>(
    spec: &EhmmSpec,
    obs: &EmissionTable,
    rng: &mut R,
) -> Vec<usize> {
    assert_eq!(spec.num_states(), obs.num_states());
    let num_states = spec.num_states();
    let num_obs = obs.num_obs();
    let mut powers = TransitionPowers::new(spec.transition().clone());
    let emissions: Vec<Vec<f64>> = (0..num_obs).map(|n| obs.scaled_linear_row(n)).collect();

    let mut alpha = vec![vec![0.0_f64; num_states]; num_obs];
    for i in 0..num_states {
        alpha[0][i] = spec.initial()[i] * emissions[0][i];
    }
    normalize(&mut alpha[0]);
    for n in 1..num_obs {
        let a = powers.power(obs.gap(n)).clone();
        let (prev, rest) = alpha.split_at_mut(n);
        let prev = &prev[n - 1];
        let cur = &mut rest[0];
        for j in 0..num_states {
            let mut acc = 0.0;
            for i in 0..num_states {
                acc += prev[i] * a.get(i, j);
            }
            cur[j] = acc * emissions[n][j];
        }
        normalize(cur);
    }

    let mut path = vec![0usize; num_obs];
    path[num_obs - 1] = sample_categorical(&alpha[num_obs - 1], rng);
    for n in (0..num_obs - 1).rev() {
        let a = powers.power(obs.gap(n + 1)).clone();
        let next_state = path[n + 1];
        let weights: Vec<f64> = (0..num_states)
            .map(|i| alpha[n][i] * a.get(i, next_state))
            .collect();
        path[n] = sample_categorical(&weights, rng);
    }
    path
}

fn normalize(v: &mut [f64]) -> f64 {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
        sum.ln()
    } else {
        let flat = 1.0 / v.len() as f64;
        for x in v.iter_mut() {
            *x = flat;
        }
        0.0
    }
}

mod differential {
    use super::*;
    use crate::matrix::TransitionMatrix;
    use crate::workspace::EhmmWorkspace;
    use crate::{forward_backward, path_log_score, sample_path_ffbs, viterbi};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-12;

    /// A random model: either the paper's tridiagonal prior (banded `A^Δ`,
    /// the production shape) or a dense random row-stochastic matrix (full
    /// bandwidth, exercising the band-clamping logic), plus a random
    /// emission table with occasional `-inf` (impossible-state) entries.
    fn any_model() -> impl Strategy<Value = (EhmmSpec, EmissionTable)> {
        (
            2usize..=12,
            1usize..=30,
            0.0f64..=1.0,
            any::<u64>(),
            any::<bool>(),
        )
            .prop_map(|(num_states, num_obs, stay, seed, dense)| {
                let mut rng = StdRng::seed_from_u64(seed);
                let transition = if dense {
                    let rows: Vec<Vec<f64>> = (0..num_states)
                        .map(|_| {
                            let raw: Vec<f64> =
                                (0..num_states).map(|_| rng.gen_range(0.01..1.0)).collect();
                            let sum: f64 = raw.iter().sum();
                            raw.iter().map(|v| v / sum).collect()
                        })
                        .collect();
                    TransitionMatrix::from_rows(rows)
                } else {
                    TransitionMatrix::tridiagonal(num_states, stay)
                };
                let spec = EhmmSpec::with_uniform_initial(transition);
                let rows: Vec<Vec<f64>> = (0..num_obs)
                    .map(|_| {
                        (0..num_states)
                            .map(|_| {
                                if rng.gen_range(0.0..1.0) < 0.05 {
                                    f64::NEG_INFINITY
                                } else {
                                    -rng.gen_range(0.0..10.0)
                                }
                            })
                            .collect()
                    })
                    .collect();
                let gaps: Vec<u32> = (0..num_obs)
                    .map(|n| if n == 0 { 0 } else { rng.gen_range(0..8) })
                    .collect();
                (spec, EmissionTable::new(rows, gaps))
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(60))]

        #[test]
        fn optimized_viterbi_is_identical_to_the_reference((spec, obs) in any_model()) {
            let fast = viterbi(&spec, &obs);
            let slow = naive_viterbi(&spec, &obs);
            prop_assert_eq!(&fast.path, &slow.path, "decoded paths diverge");
            let diff = (fast.log_likelihood - slow.log_likelihood).abs();
            prop_assert!(
                diff <= TOL || (fast.log_likelihood.is_infinite()
                    && slow.log_likelihood.is_infinite()),
                "log-likelihoods diverge: {} vs {}", fast.log_likelihood, slow.log_likelihood
            );
        }

        #[test]
        fn optimized_posteriors_match_the_reference((spec, obs) in any_model()) {
            let fast = forward_backward(&spec, &obs);
            let slow = naive_forward_backward(&spec, &obs);
            prop_assert!(
                (fast.log_likelihood - slow.log_likelihood).abs() <= TOL,
                "log-likelihood: {} vs {}", fast.log_likelihood, slow.log_likelihood
            );
            for n in 0..obs.num_obs() {
                for i in 0..spec.num_states() {
                    prop_assert!(
                        (fast.gamma[n][i] - slow.gamma[n][i]).abs() <= TOL,
                        "gamma[{}][{}]: {} vs {}", n, i, fast.gamma[n][i], slow.gamma[n][i]
                    );
                }
            }
            prop_assert_eq!(fast.xi.len(), slow.xi.len());
            for n in 0..fast.xi.len() {
                for i in 0..spec.num_states() {
                    for j in 0..spec.num_states() {
                        prop_assert!(
                            (fast.xi[n][i][j] - slow.xi[n][i][j]).abs() <= TOL,
                            "xi[{}][{}][{}]: {} vs {}", n, i, j, fast.xi[n][i][j], slow.xi[n][i][j]
                        );
                    }
                }
            }
        }

        #[test]
        fn optimized_path_scores_match_the_reference(((spec, obs), seed) in (any_model(), any::<u64>())) {
            let mut rng = StdRng::seed_from_u64(seed);
            let path: Vec<usize> = (0..obs.num_obs())
                .map(|_| rng.gen_range(0..spec.num_states()))
                .collect();
            let fast = path_log_score(&spec, &obs, &path);
            let slow = naive_path_log_score(&spec, &obs, &path);
            prop_assert!(
                (fast - slow).abs() <= TOL || (fast.is_infinite() && slow.is_infinite()),
                "path score: {} vs {}", fast, slow
            );
        }

        #[test]
        fn optimized_ffbs_consumes_the_same_rng_stream(((spec, obs), seed) in (any_model(), any::<u64>())) {
            // Identical weights (zeros outside the band are structural) must
            // produce identical draws from identical RNG states.
            let fast = sample_path_ffbs(&spec, &obs, &mut StdRng::seed_from_u64(seed));
            let slow = naive_sample_path_ffbs(&spec, &obs, &mut StdRng::seed_from_u64(seed));
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn shared_workspace_matches_fresh_workspaces((spec, obs) in any_model()) {
            // Running every kernel through one shared workspace (the engine
            // configuration) gives the same results as the one-shot wrappers.
            let ws = EhmmWorkspace::new(spec.clone());
            let v1 = ws.viterbi(&obs);
            let v2 = viterbi(&spec, &obs);
            prop_assert_eq!(v1.path, v2.path);
            let p1 = ws.forward_backward(&obs);
            let p2 = forward_backward(&spec, &obs);
            prop_assert_eq!(p1, p2);
        }
    }
}
