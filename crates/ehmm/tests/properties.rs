//! Property-based tests of the EHMM machinery: transition-matrix algebra,
//! agreement between the scaled forward–backward smoother and brute-force
//! enumeration on small random models, Viterbi optimality, and sampler
//! support.
//!
//! Determinism: the vendored proptest harness (shims/proptest) derives every
//! case's RNG seed from (module path, test name, case index), and all direct
//! `StdRng` uses below seed from literals, so CI runs are fully reproducible
//! with no persisted shrink state.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use veritas_ehmm::{
    forward_backward, path_log_score, sample_path, sample_path_ffbs, viterbi, EhmmSpec,
    EmissionTable, TransitionMatrix, TransitionPowers,
};

/// Strategy: a small random model (3–5 states) plus a random emission table
/// (2–5 observations) with gaps in 0..=3.
fn small_model() -> impl Strategy<Value = (EhmmSpec, EmissionTable)> {
    (3usize..=5, 2usize..=5, 0.2f64..0.95, any::<u64>()).prop_map(
        |(num_states, num_obs, stay, seed)| {
            use rand::Rng;
            let mut rng = StdRng::seed_from_u64(seed);
            let spec =
                EhmmSpec::with_uniform_initial(TransitionMatrix::tridiagonal(num_states, stay));
            let rows: Vec<Vec<f64>> = (0..num_obs)
                .map(|_| (0..num_states).map(|_| -rng.gen_range(0.0..8.0)).collect())
                .collect();
            let gaps: Vec<u32> = (0..num_obs)
                .map(|n| if n == 0 { 0 } else { rng.gen_range(0..4) })
                .collect();
            (spec, EmissionTable::new(rows, gaps))
        },
    )
}

/// Exact posteriors by enumerating every hidden-state sequence.
fn brute_force_gamma(spec: &EhmmSpec, obs: &EmissionTable) -> Vec<Vec<f64>> {
    let num_states = spec.num_states();
    let num_obs = obs.num_obs();
    let mut powers = TransitionPowers::new(spec.transition().clone());
    let emissions: Vec<Vec<f64>> = (0..num_obs).map(|n| obs.scaled_linear_row(n)).collect();
    let mut gamma = vec![vec![0.0; num_states]; num_obs];
    let mut z = 0.0;
    for idx in 0..num_states.pow(num_obs as u32) {
        let mut rem = idx;
        let mut path = vec![0usize; num_obs];
        for slot in path.iter_mut() {
            *slot = rem % num_states;
            rem /= num_states;
        }
        let mut w = spec.initial()[path[0]] * emissions[0][path[0]];
        for n in 1..num_obs {
            let a = powers.power(obs.gap(n));
            w *= a.get(path[n - 1], path[n]) * emissions[n][path[n]];
        }
        z += w;
        for n in 0..num_obs {
            gamma[n][path[n]] += w;
        }
    }
    for row in &mut gamma {
        for v in row.iter_mut() {
            *v /= z;
        }
    }
    gamma
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn tridiagonal_powers_stay_stochastic((n, stay, k) in (2usize..30, 0.0f64..=1.0, 0u32..200)) {
        let m = TransitionMatrix::tridiagonal(n, stay);
        prop_assert!(m.is_row_stochastic(1e-9));
        prop_assert!(m.power(k).is_row_stochastic(1e-7));
    }

    #[test]
    fn power_is_multiplicative((n, stay, a, b) in (2usize..10, 0.1f64..0.95, 0u32..12, 0u32..12)) {
        let m = TransitionMatrix::tridiagonal(n, stay);
        let lhs = m.power(a + b);
        let rhs = m.power(a).multiply(&m.power(b));
        for i in 0..n {
            for j in 0..n {
                prop_assert!((lhs.get(i, j) - rhs.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn forward_backward_matches_enumeration((spec, obs) in small_model()) {
        let fb = forward_backward(&spec, &obs);
        let exact = brute_force_gamma(&spec, &obs);
        for n in 0..obs.num_obs() {
            for i in 0..spec.num_states() {
                prop_assert!(
                    (fb.gamma[n][i] - exact[n][i]).abs() < 1e-7,
                    "gamma[{}][{}] = {} vs exact {}", n, i, fb.gamma[n][i], exact[n][i]
                );
            }
        }
    }

    #[test]
    fn viterbi_path_is_optimal_among_enumerated_paths((spec, obs) in small_model()) {
        let num_states = spec.num_states();
        let num_obs = obs.num_obs();
        let result = viterbi(&spec, &obs);
        let best = path_log_score(&spec, &obs, &result.path);
        for idx in 0..num_states.pow(num_obs as u32) {
            let mut rem = idx;
            let mut path = vec![0usize; num_obs];
            for slot in path.iter_mut() {
                *slot = rem % num_states;
                rem /= num_states;
            }
            prop_assert!(path_log_score(&spec, &obs, &path) <= best + 1e-9);
        }
    }

    #[test]
    fn xi_marginalizes_to_gamma((spec, obs) in small_model()) {
        let fb = forward_backward(&spec, &obs);
        for n in 0..fb.xi.len() {
            for i in 0..spec.num_states() {
                let row_sum: f64 = fb.xi[n][i].iter().sum();
                prop_assert!((row_sum - fb.gamma[n][i]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn samplers_produce_valid_in_range_paths(((spec, obs), seed) in (small_model(), any::<u64>())) {
        let fb = forward_backward(&spec, &obs);
        let vit = viterbi(&spec, &obs);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = sample_path(&fb, &vit, &mut rng);
        let b = sample_path_ffbs(&spec, &obs, &mut rng);
        prop_assert_eq!(a.len(), obs.num_obs());
        prop_assert_eq!(b.len(), obs.num_obs());
        prop_assert!(a.iter().all(|&s| s < spec.num_states()));
        prop_assert!(b.iter().all(|&s| s < spec.num_states()));
        // Paths through zero-gap steps never change state.
        for n in 1..obs.num_obs() {
            if obs.gap(n) == 0 {
                prop_assert_eq!(a[n], a[n - 1]);
                prop_assert_eq!(b[n], b[n - 1]);
            }
        }
    }
}
