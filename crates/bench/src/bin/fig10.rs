//! Figure 10: predicted impact of raising the buffer from 5 s to 30 s.

use veritas::VeritasConfig;
use veritas_bench::experiments::counterfactual::{
    outcomes_table, run_paper_scenario_via_engine, summary_table, PaperScenario,
};
use veritas_bench::report::results_dir;
use veritas_bench::workload::{traces_from_env, CorpusSpec};

fn main() {
    let traces = traces_from_env(40);
    let corpus = CorpusSpec::counterfactual(traces).build();
    let config = VeritasConfig::paper_default();
    println!("Figure 10: predicted impact of a 30 s buffer over {traces} traces\n");
    let outcomes = run_paper_scenario_via_engine(&corpus, PaperScenario::Buffer30s, &config);
    let table = outcomes_table(&outcomes);
    println!("{}", table.render());
    println!("{}", summary_table(&outcomes).render());
    let path = results_dir().join("fig10.csv");
    if table.write_csv(&path).is_ok() {
        println!("wrote {}", path.display());
    }
}
