//! Figure 11: predicted impact of offering a higher set of video qualities.

use veritas::VeritasConfig;
use veritas_bench::experiments::counterfactual::{
    outcomes_table, run_counterfactual, summary_table, PaperScenario,
};
use veritas_bench::report::results_dir;
use veritas_bench::workload::{traces_from_env, CorpusSpec};

fn main() {
    let traces = traces_from_env(40);
    let corpus = CorpusSpec::counterfactual(traces).build();
    let config = VeritasConfig::paper_default();
    let scenario = PaperScenario::HigherQualities.scenario(&corpus);
    println!("Figure 11: predicted impact of a higher quality ladder over {traces} traces\n");
    let outcomes = run_counterfactual(&corpus, &scenario, &config);
    let table = outcomes_table(&outcomes);
    println!("{}", table.render());
    println!("{}", summary_table(&outcomes).render());
    let path = results_dir().join("fig11.csv");
    if table.write_csv(&path).is_ok() {
        println!("wrote {}", path.display());
    }
}
