//! Figure 2(a): download-time distribution per chunk-size bucket under MPC
//! on a mix of poor and good traces (non-monotonic due to ABR confounding).

use veritas_bench::experiments::motivation::fig2a;
use veritas_bench::report::results_dir;
use veritas_bench::workload::traces_from_env;

fn main() {
    let traces_per_condition = traces_from_env(10);
    println!("Figure 2(a): {traces_per_condition} poor + {traces_per_condition} good traces, MPC, 5 s buffer\n");
    let table = fig2a(traces_per_condition);
    println!("{}", table.render());
    let path = results_dir().join("fig2a.csv");
    if table.write_csv(&path).is_ok() {
        println!("wrote {}", path.display());
    }
}
