//! Figure 7: GTBW vs Baseline vs Veritas posterior samples for one example
//! session, plus per-series reconstruction error.

use veritas::VeritasConfig;
use veritas_bench::experiments::counterfactual::fig7_example;
use veritas_bench::report::results_dir;
use veritas_bench::workload::CorpusSpec;

fn main() {
    let corpus = CorpusSpec::counterfactual(1).build();
    let config = VeritasConfig::paper_default();
    let (series, errors) = fig7_example(&corpus, 0, &config);
    println!("Figure 7: example trace reconstruction\n");
    println!("{}", series.render());
    println!("{}", errors.render());
    let _ = series.write_csv(&results_dir().join("fig7_series.csv"));
    let _ = errors.write_csv(&results_dir().join("fig7_errors.csv"));
    println!(
        "wrote fig7_series.csv and fig7_errors.csv under {}",
        results_dir().display()
    );
}
