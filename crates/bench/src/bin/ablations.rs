//! Ablations of the Veritas design choices (DESIGN.md section 5): transition
//! prior, emission noise, quantization, sampling, and TCP-state conditioning.

use veritas_bench::experiments::ablation::ablation_table;
use veritas_bench::report::results_dir;
use veritas_bench::workload::{traces_from_env, CorpusSpec};

fn main() {
    let traces = traces_from_env(10);
    let corpus = CorpusSpec::counterfactual(traces).build();
    println!("Ablations: GTBW reconstruction MAE over {traces} traces\n");
    let table = ablation_table(&corpus);
    println!("{}", table.render());
    let path = results_dir().join("ablations.csv");
    if table.write_csv(&path).is_ok() {
        println!("wrote {}", path.display());
    }
}
