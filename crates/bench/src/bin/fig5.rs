//! Figure 5: error CDF of the Veritas throughput estimator f against the
//! ground-truth TCP model across capacities, delays, sizes and gaps.

use veritas_bench::experiments::motivation::fig5;
use veritas_bench::report::results_dir;
use veritas_bench::workload::traces_from_env;

fn main() {
    let payloads = traces_from_env(40);
    println!("Figure 5: {payloads} payloads per (capacity, delay) setting\n");
    let table = fig5(payloads);
    println!("{}", table.render());
    println!("Expected shape: the bulk of the error mass within ~1 Mbps.");
    let path = results_dir().join("fig5.csv");
    if table.write_csv(&path).is_ok() {
        println!("wrote {}", path.display());
    }
}
