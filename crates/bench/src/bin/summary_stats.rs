//! In-text summary statistics (§1, §4.3, §6): median rebuffering ratio for
//! the change-of-qualities counterfactual, and Fugu's tail underestimation.

use veritas::VeritasConfig;
use veritas_bench::experiments::counterfactual::qualities_rebuffer_medians;
use veritas_bench::experiments::interventional::{fig12, fig12_summary_table};
use veritas_bench::workload::{traces_from_env, CorpusSpec};

fn main() {
    let traces = traces_from_env(20);
    let config = VeritasConfig::paper_default();
    let corpus = CorpusSpec::counterfactual(traces).build();
    let (oracle, veritas, baseline) = qualities_rebuffer_medians(&corpus, &config);
    println!("Change-of-qualities counterfactual, median rebuffering ratio ({traces} traces):");
    println!("  oracle (GTBW): {oracle:.2}%   veritas: {veritas:.2}%   baseline: {baseline:.2}%");
    println!("  (paper: baseline ~6.7%, veritas and oracle near 0%)\n");

    let result = fig12(traces.min(12), 4, 25, &config);
    println!("Interventional download-time prediction:");
    println!("{}", fig12_summary_table(&result).render());
    println!(
        "  (paper: Fugu underestimates by >= 5.8 s for 10% of chunks, up to ~35 s worst case)"
    );
}
