//! Compares two benchmark JSONL files (the `VERITAS_BENCH_JSON` format:
//! one `{"id": ..., "median_ns": ..., "samples": [...]}` line per
//! benchmark) and fails when any shared benchmark regressed beyond a
//! ratio threshold.
//!
//! ```text
//! bench_compare <baseline.json> <candidate.json> [--max-ratio R]
//! ```
//!
//! Used by the CI `perf-smoke` job as a noise-tolerant guardrail (default
//! threshold 3×): cross-machine medians are too noisy for a strict gate,
//! but an order-of-magnitude regression in a kernel should stop a merge.
//! Benchmarks present in only one file are reported but never fail the
//! comparison, so adding or retiring benches does not break CI.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench_compare: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut paths = Vec::new();
    let mut max_ratio = 3.0_f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--max-ratio" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--max-ratio requires a value".to_string())?;
                max_ratio = value
                    .parse()
                    .map_err(|_| format!("invalid --max-ratio value `{value}`"))?;
                if !(max_ratio.is_finite() && max_ratio > 0.0) {
                    return Err(format!("--max-ratio must be positive, got {max_ratio}"));
                }
            }
            "--help" | "-h" => {
                println!("usage: bench_compare <baseline.json> <candidate.json> [--max-ratio R]");
                return Ok(());
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => paths.push(path.to_string()),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return Err(
            "expected exactly two positional arguments: <baseline.json> <candidate.json>"
                .to_string(),
        );
    };
    let baseline = load_medians(baseline_path)?;
    let candidate = load_medians(candidate_path)?;

    let mut regressions = Vec::new();
    println!(
        "{:<45} {:>12} {:>12} {:>8}",
        "benchmark", "baseline", "candidate", "ratio"
    );
    for (id, &base_ns) in &baseline {
        let Some(&cand_ns) = candidate.get(id) else {
            println!("{id:<45} {:>12} {:>12} {:>8}", format_ns(base_ns), "-", "-");
            continue;
        };
        let ratio = cand_ns / base_ns;
        let marker = if ratio > max_ratio {
            "  << REGRESSION"
        } else {
            ""
        };
        println!(
            "{id:<45} {:>12} {:>12} {ratio:>7.2}x{marker}",
            format_ns(base_ns),
            format_ns(cand_ns)
        );
        if ratio > max_ratio {
            regressions.push(format!("{id}: {ratio:.2}x (limit {max_ratio:.2}x)"));
        }
    }
    for id in candidate.keys().filter(|id| !baseline.contains_key(*id)) {
        println!(
            "{id:<45} {:>12} {:>12} {:>8}",
            "-",
            format_ns(candidate[id]),
            "new"
        );
    }
    if regressions.is_empty() {
        println!("ok: no benchmark regressed beyond {max_ratio:.2}x");
        Ok(())
    } else {
        Err(format!(
            "{} benchmark(s) regressed beyond {max_ratio:.2}x:\n  {}",
            regressions.len(),
            regressions.join("\n  ")
        ))
    }
}

/// One line of the `VERITAS_BENCH_JSON` format.
#[derive(serde::Deserialize)]
struct BenchRecord {
    id: String,
    median_ns: f64,
    #[allow(dead_code)]
    samples: Vec<f64>,
}

/// Parses a bench JSONL file into `id -> median_ns`. Later lines win on
/// duplicate ids (the JSON file is appended to across runs).
fn load_medians(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let data = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut medians = BTreeMap::new();
    for (number, line) in data.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: BenchRecord = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: invalid record: {e}", number + 1))?;
        medians.insert(record.id, record.median_ns);
    }
    if medians.is_empty() {
        return Err(format!("{path} contains no benchmark records"));
    }
    Ok(medians)
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.1}ns")
    }
}
