//! Figure 2(b): Fugu's prediction error when forced to answer a causal query
//! (download time of a forced low- vs high-quality next chunk).

use veritas_bench::experiments::motivation::fig2b;
use veritas_bench::report::results_dir;
use veritas_bench::workload::traces_from_env;

fn main() {
    let training_traces = traces_from_env(10);
    println!(
        "Figure 2(b): Fugu trained on {training_traces} poor + {training_traces} good MPC traces\n"
    );
    let table = fig2b(training_traces);
    println!("{}", table.render());
    println!("Expected shape: accurate for the low-quality chunk, a large under-estimate for the high-quality chunk.");
    let path = results_dir().join("fig2b.csv");
    if table.write_csv(&path).is_ok() {
        println!("wrote {}", path.display());
    }
}
