//! Figure 2(c): observed throughput vs payload size over a constant 18 Mbps
//! link with random inter-request gaps (TCP slow-start / size effects).

use veritas_bench::experiments::motivation::fig2c;
use veritas_bench::report::results_dir;
use veritas_bench::workload::traces_from_env;

fn main() {
    let requests = traces_from_env(40);
    println!("Figure 2(c): {requests} requests per size bucket, constant 18 Mbps link\n");
    let table = fig2c(requests);
    println!("{}", table.render());
    let path = results_dir().join("fig2c.csv");
    if table.write_csv(&path).is_ok() {
        println!("wrote {}", path.display());
    }
}
