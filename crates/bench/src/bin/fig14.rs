//! Figure 14 (appendix): average bitrate comparison across all counterfactual
//! queries.

use veritas::VeritasConfig;
use veritas_bench::experiments::counterfactual::fig14_bitrates;
use veritas_bench::report::results_dir;
use veritas_bench::workload::{traces_from_env, CorpusSpec};

fn main() {
    let traces = traces_from_env(20);
    let corpus = CorpusSpec::counterfactual(traces).build();
    let config = VeritasConfig::paper_default();
    println!("Figure 14: median average-bitrate per counterfactual query ({traces} traces)\n");
    let table = fig14_bitrates(&corpus, &config);
    println!("{}", table.render());
    let path = results_dir().join("fig14.csv");
    if table.write_csv(&path).is_ok() {
        println!("wrote {}", path.display());
    }
}
