//! Figure 8: the true impact of changing the ABR from MPC to BBA, both
//! settings replayed on the ground-truth traces.

use veritas_bench::experiments::counterfactual::fig8_true_impact;
use veritas_bench::report::results_dir;
use veritas_bench::workload::{traces_from_env, CorpusSpec};

fn main() {
    let traces = traces_from_env(40);
    let corpus = CorpusSpec::counterfactual(traces).build();
    println!("Figure 8: true impact of MPC -> BBA over {traces} traces\n");
    let table = fig8_true_impact(&corpus, "bba");
    println!("{}", table.render());
    let path = results_dir().join("fig8.csv");
    if table.write_csv(&path).is_ok() {
        println!("wrote {}", path.display());
    }
}
