//! Figure 12: interventional download-time prediction — FuguNN vs Veritas on
//! randomized chunk sequences.

use veritas::VeritasConfig;
use veritas_bench::experiments::interventional::{fig12, fig12_scatter_table, fig12_summary_table};
use veritas_bench::report::results_dir;
use veritas_bench::workload::traces_from_env;

fn main() {
    let training_traces = traces_from_env(20);
    let test_traces = (training_traces / 3).max(2);
    let config = VeritasConfig::paper_default();
    println!(
        "Figure 12: Fugu trained on {training_traces} MPC traces, tested on {test_traces} randomized traces\n"
    );
    let result = fig12(training_traces, test_traces, 30, &config);
    let scatter = fig12_scatter_table(&result, 2000);
    let summary = fig12_summary_table(&result);
    println!("{}", summary.render());
    println!(
        "Expected shape: Fugu underestimates long download times; Veritas stays near the diagonal."
    );
    let _ = scatter.write_csv(&results_dir().join("fig12_scatter.csv"));
    let _ = summary.write_csv(&results_dir().join("fig12_summary.csv"));
    println!(
        "wrote fig12_scatter.csv and fig12_summary.csv under {}",
        results_dir().display()
    );
}
