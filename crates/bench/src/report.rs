//! Small reporting helpers: aligned tables, CSV output, summary statistics.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned table that can also be written out as CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringifying each cell).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned, human-readable table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(out, "{cell:>w$}  ", w = w);
            }
            let _ = writeln!(out);
        };
        render_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a float with three decimals (shared by the figure binaries).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with four decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Mean of a slice (NaN for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        f64::NAN
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Median of a slice (NaN for empty input).
pub fn median(values: &[f64]) -> f64 {
    veritas_trace::stats::percentile(values, 50.0)
}

/// Default output directory for CSV results (`crates/bench/results/`).
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_exports_csv() {
        let mut t = Table::new(vec!["trace", "ssim"]);
        t.push_row(vec!["0".to_string(), f4(0.97)]);
        t.push_row(vec!["1".to_string(), f4(0.92)]);
        assert_eq!(t.len(), 2);
        let rendered = t.render();
        assert!(rendered.contains("trace"));
        assert!(rendered.contains("0.9700"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("trace,ssim"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn summary_statistics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
        assert_eq!(median(&[5.0, 1.0, 9.0]), 5.0);
    }
}
