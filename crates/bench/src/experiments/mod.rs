//! Per-figure experiment implementations.
//!
//! Every public function here corresponds to a figure (or in-text statistic)
//! of the paper; the binaries in `src/bin/` are thin wrappers around them.
//! The README's "Reproducing paper figures" section is the complete
//! figure-to-binary index.

pub mod ablation;
pub mod counterfactual;
pub mod interventional;
pub mod motivation;
