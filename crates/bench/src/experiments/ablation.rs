//! Ablations of the Veritas design choices (paper §4.5 and appendix):
//! the transition prior, emission noise, quantization, sample count, and —
//! most importantly — conditioning the emission on TCP state through the
//! estimator `f` versus a naive "throughput equals capacity" emission.
//! The `ablations` binary in `src/bin/` runs them all (see the README's
//! figure-to-binary map).

use veritas::{Abduction, VeritasConfig};
use veritas_ehmm::{
    forward_backward, interpolate_full_path, states_to_values, viterbi, EhmmSpec, EmissionTable,
    TransitionMatrix,
};
use veritas_net::gaussian_log_pdf;
use veritas_player::SessionLog;
use veritas_trace::stats::trace_mae;
use veritas_trace::{BandwidthTrace, Quantizer};

use crate::default_threads;
use crate::report::{f3, mean, Table};
use crate::workload::Corpus;
use veritas_engine::executor::execute_indexed;

/// GTBW reconstruction error (MAE in Mbps, averaged over traces) of the
/// standard Veritas abduction under a given configuration.
pub fn reconstruction_mae(corpus: &Corpus, config: &VeritasConfig) -> f64 {
    let errors = execute_indexed(corpus.logs.len(), default_threads(), |i| {
        let log = &corpus.logs[i];
        let truth = &corpus.truths[i];
        let abduction = Abduction::infer(log, config);
        let estimate = abduction.viterbi_trace();
        let horizon = log.session_duration_s.min(truth.duration());
        trace_mae(&truth.with_duration(horizon), &estimate, config.delta_s)
    });
    mean(&errors)
}

/// Reconstruction error when the emission ignores the TCP state and chunk
/// size entirely and simply models the observed throughput as Gaussian noise
/// around the capacity (`Y ~ N(c, σ)`). This is the "no control variables"
/// ablation: it collapses Veritas back to a smoothed version of the Baseline.
pub fn naive_emission_mae(corpus: &Corpus, config: &VeritasConfig) -> f64 {
    let errors = execute_indexed(corpus.logs.len(), default_threads(), |i| {
        let log = &corpus.logs[i];
        let truth = &corpus.truths[i];
        let estimate = naive_emission_trace(log, config);
        let horizon = log.session_duration_s.min(truth.duration());
        trace_mae(&truth.with_duration(horizon), &estimate, config.delta_s)
    });
    mean(&errors)
}

/// Builds the naive-emission EHMM estimate for one log (used by the
/// ablation and exposed for tests).
pub fn naive_emission_trace(log: &SessionLog, config: &VeritasConfig) -> BandwidthTrace {
    let quantizer = Quantizer::new(config.epsilon_mbps, config.max_capacity_mbps);
    let capacities = quantizer.values();
    let rows: Vec<Vec<f64>> = log
        .records
        .iter()
        .map(|r| {
            capacities
                .iter()
                .map(|&c| gaussian_log_pdf(r.throughput_mbps, c, config.sigma_mbps))
                .collect()
        })
        .collect();
    let start_intervals: Vec<usize> = log
        .records
        .iter()
        .map(|r| (r.start_time_s / config.delta_s).floor() as usize)
        .collect();
    let gaps: Vec<u32> = start_intervals
        .iter()
        .enumerate()
        .map(|(n, &t)| {
            if n == 0 {
                0
            } else {
                (t - start_intervals[n - 1]) as u32
            }
        })
        .collect();
    let obs = EmissionTable::new(rows, gaps);
    let spec = EhmmSpec::with_uniform_initial(TransitionMatrix::tridiagonal(
        capacities.len(),
        config.stay_probability,
    ));
    let path = viterbi(&spec, &obs).path;
    let total_intervals = ((log.session_duration_s / config.delta_s).ceil() as usize)
        .max(start_intervals.last().copied().unwrap_or(0) + 1);
    let full = interpolate_full_path(&start_intervals, &path, total_intervals);
    BandwidthTrace::from_uniform(config.delta_s, &states_to_values(&full, &capacities))
        .expect("naive emission trace is valid")
}

/// Reconstruction error of the posterior-*sampled* traces (rather than the
/// Viterbi point estimate), averaged over `k` samples — quantifies how much
/// the sample spread costs relative to the MAP solution.
pub fn sampled_reconstruction_mae(corpus: &Corpus, config: &VeritasConfig, k: usize) -> f64 {
    let errors = execute_indexed(corpus.logs.len(), default_threads(), |i| {
        let log = &corpus.logs[i];
        let truth = &corpus.truths[i];
        let abduction = Abduction::infer(log, config);
        let horizon = log.session_duration_s.min(truth.duration());
        let truth_cut = truth.with_duration(horizon);
        let maes: Vec<f64> = abduction
            .sample_traces(k)
            .iter()
            .map(|s| trace_mae(&truth_cut, s, config.delta_s))
            .collect();
        mean(&maes)
    });
    mean(&errors)
}

/// Exercise the exact-FFBS sampler as an alternative to the paper's
/// Algorithm 1, returning its average reconstruction MAE.
pub fn ffbs_reconstruction_mae(corpus: &Corpus, config: &VeritasConfig, k: usize) -> f64 {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let errors = execute_indexed(corpus.logs.len(), default_threads(), |i| {
        let log = &corpus.logs[i];
        let truth = &corpus.truths[i];
        let horizon = log.session_duration_s.min(truth.duration());
        let truth_cut = truth.with_duration(horizon);
        // Rebuild the emission table exactly as Abduction does, but sample
        // with the exact FFBS instead of Algorithm 1.
        let quantizer = Quantizer::new(config.epsilon_mbps, config.max_capacity_mbps);
        let capacities = quantizer.values();
        let rows: Vec<Vec<f64>> = log
            .records
            .iter()
            .map(|r| {
                capacities
                    .iter()
                    .map(|&c| {
                        veritas_net::emission_log_density(
                            r.throughput_mbps,
                            c,
                            &r.tcp_info,
                            r.size_bytes,
                            config.sigma_mbps,
                        )
                    })
                    .collect()
            })
            .collect();
        let start_intervals: Vec<usize> = log
            .records
            .iter()
            .map(|r| (r.start_time_s / config.delta_s).floor() as usize)
            .collect();
        let gaps: Vec<u32> = start_intervals
            .iter()
            .enumerate()
            .map(|(n, &t)| {
                if n == 0 {
                    0
                } else {
                    (t - start_intervals[n - 1]) as u32
                }
            })
            .collect();
        let obs = EmissionTable::new(rows, gaps);
        let spec = EhmmSpec::with_uniform_initial(TransitionMatrix::tridiagonal(
            capacities.len(),
            config.stay_probability,
        ));
        // Smoothed posterior is unused here but keeps parity of work.
        let _ = forward_backward(&spec, &obs);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let total_intervals = ((log.session_duration_s / config.delta_s).ceil() as usize)
            .max(start_intervals.last().copied().unwrap_or(0) + 1);
        let maes: Vec<f64> = (0..k)
            .map(|_| {
                let path = veritas_ehmm::sample_path_ffbs(&spec, &obs, &mut rng);
                let full = interpolate_full_path(&start_intervals, &path, total_intervals);
                let trace = BandwidthTrace::from_uniform(
                    config.delta_s,
                    &states_to_values(&full, &capacities),
                )
                .expect("ffbs trace is valid");
                trace_mae(&truth_cut, &trace, config.delta_s)
            })
            .collect();
        mean(&maes)
    });
    mean(&errors)
}

/// Runs the full ablation sweep and renders it as a table of
/// (variant, reconstruction MAE).
pub fn ablation_table(corpus: &Corpus) -> Table {
    let base = VeritasConfig::paper_default();
    let mut table = Table::new(vec!["variant", "gtbw_reconstruction_mae_mbps"]);
    table.push_row(vec![
        "paper_default".to_string(),
        f3(reconstruction_mae(corpus, &base)),
    ]);
    table.push_row(vec![
        "no_tcp_state_conditioning".to_string(),
        f3(naive_emission_mae(corpus, &base)),
    ]);
    table.push_row(vec![
        "uniform_prior(stay=1/n_eff)".to_string(),
        f3(reconstruction_mae(
            corpus,
            &base.with_stay_probability(0.05),
        )),
    ]);
    table.push_row(vec![
        "very_sticky_prior(stay=0.99)".to_string(),
        f3(reconstruction_mae(
            corpus,
            &base.with_stay_probability(0.99),
        )),
    ]);
    for sigma in [0.1, 1.0] {
        table.push_row(vec![
            format!("sigma={sigma}"),
            f3(reconstruction_mae(corpus, &base.with_sigma(sigma))),
        ]);
    }
    let coarse = VeritasConfig {
        epsilon_mbps: 1.0,
        ..base
    };
    table.push_row(vec![
        "epsilon=1.0".to_string(),
        f3(reconstruction_mae(corpus, &coarse)),
    ]);
    let fine_delta = VeritasConfig {
        delta_s: 2.0,
        ..base
    };
    table.push_row(vec![
        "delta=2s".to_string(),
        f3(reconstruction_mae(corpus, &fine_delta)),
    ]);
    table.push_row(vec![
        "posterior_samples(K=5)".to_string(),
        f3(sampled_reconstruction_mae(corpus, &base, 5)),
    ]);
    table.push_row(vec![
        "exact_ffbs_samples(K=5)".to_string(),
        f3(ffbs_reconstruction_mae(corpus, &base, 5)),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::CorpusSpec;

    fn tiny_corpus() -> Corpus {
        CorpusSpec {
            traces: 2,
            video_duration_s: 120.0,
            ..CorpusSpec::counterfactual(2)
        }
        .build()
    }

    #[test]
    fn tcp_state_conditioning_helps_reconstruction() {
        let corpus = tiny_corpus();
        let config = VeritasConfig::paper_default();
        let with_f = reconstruction_mae(&corpus, &config);
        let naive = naive_emission_mae(&corpus, &config);
        assert!(
            with_f <= naive + 0.05,
            "conditioning on TCP state via f (MAE {with_f}) should not lose to the naive emission (MAE {naive})"
        );
    }

    #[test]
    fn sampled_traces_are_close_to_the_viterbi_estimate() {
        // Posterior samples explore around the MAP solution; their average
        // reconstruction error must stay in the same ballpark (either side —
        // MAP under the model is not necessarily closest to the truth).
        let corpus = tiny_corpus();
        let config = VeritasConfig::paper_default();
        let point = reconstruction_mae(&corpus, &config);
        let sampled = sampled_reconstruction_mae(&corpus, &config, 3);
        assert!(
            (sampled - point).abs() < 2.0,
            "sampled MAE {sampled} drifted far from the Viterbi MAE {point}"
        );
    }

    #[test]
    fn naive_emission_trace_is_well_formed() {
        let corpus = tiny_corpus();
        let trace = naive_emission_trace(&corpus.logs[0], &VeritasConfig::paper_default());
        assert!(trace.min() >= 0.0);
        assert!(trace.duration() > 0.0);
    }
}
