//! Motivation experiments: Figure 2(a–c) and the estimator-error CDF
//! (Figure 5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use veritas_abr::Mpc;
use veritas_fugu::{FuguConfig, FuguModel, TrainConfig};
use veritas_media::{QualityLadder, VbrParams, VideoAsset};
use veritas_net::{estimate_throughput, LinkModel, TcpConnection};
use veritas_player::{run_session, PlayerConfig};
use veritas_trace::generators::{FccLike, TraceGenerator};
use veritas_trace::stats::percentile;
use veritas_trace::BandwidthTrace;

use crate::report::{f3, Table};

/// Figure 2(a): distribution of download times per chunk-size bucket under
/// MPC on a mix of poor (0–0.3 Mbps) and good (9–10 Mbps) traces. The
/// non-monotonic relationship is the fingerprint of ABR-induced confounding.
pub fn fig2a(traces_per_condition: usize) -> Table {
    let asset = VideoAsset::generate(
        QualityLadder::paper_default(),
        600.0,
        2.0,
        VbrParams::default(),
        1,
    );
    let player = PlayerConfig::paper_default();
    let mut pairs: Vec<(f64, f64)> = Vec::new(); // (size MB, download time s)
    let poor = FccLike::new(0.15, 0.3);
    let good = FccLike::new(9.0, 10.0);
    for i in 0..traces_per_condition as u64 {
        for (tag, gen) in [(0u64, &poor), (1u64, &good)] {
            let truth = gen.generate(3600.0, 10_000 + i * 2 + tag);
            let mut abr = Mpc::new();
            let log = run_session(&asset, &mut abr, &truth, &player);
            for r in &log.records {
                pairs.push((r.size_bytes / 1e6, r.download_time_s));
            }
        }
    }
    // The paper's size buckets (MB).
    let buckets = [
        (0.0, 0.02),
        (0.02, 0.04),
        (0.04, 0.10),
        (0.10, 1.0),
        (1.0, 2.0),
        (2.0, 4.2),
    ];
    let mut table = Table::new(vec![
        "size_bucket_mb",
        "chunks",
        "p25_download_s",
        "median_download_s",
        "p75_download_s",
    ]);
    for (lo, hi) in buckets {
        let times: Vec<f64> = pairs
            .iter()
            .filter(|(s, _)| *s >= lo && *s < hi)
            .map(|(_, t)| *t)
            .collect();
        if times.is_empty() {
            continue;
        }
        table.push_row(vec![
            format!("{lo}-{hi}"),
            times.len().to_string(),
            f3(percentile(&times, 25.0)),
            f3(percentile(&times, 50.0)),
            f3(percentile(&times, 75.0)),
        ]);
    }
    table
}

/// Figure 2(b): Fugu's causal-query error. Train Fugu on mixed-condition MPC
/// logs, then on a poor-network session ask for the download time of the
/// next chunk if it were forced to the lowest vs the highest quality, and
/// compare against the actual download times of those forced choices.
pub fn fig2b(training_traces: usize) -> Table {
    let asset = VideoAsset::generate(
        QualityLadder::paper_default(),
        600.0,
        2.0,
        VbrParams::default(),
        1,
    );
    let player = PlayerConfig::paper_default();
    let poor = FccLike::new(0.15, 0.3);
    let good = FccLike::new(9.0, 10.0);
    let mut training_logs = Vec::new();
    for i in 0..training_traces as u64 {
        for (tag, gen) in [(0u64, &poor), (1u64, &good)] {
            let truth = gen.generate(3600.0, 20_000 + i * 2 + tag);
            let mut abr = Mpc::new();
            training_logs.push(run_session(&asset, &mut abr, &truth, &player));
        }
    }
    let fugu = FuguModel::train_on_logs(
        &training_logs,
        FuguConfig {
            train: TrainConfig {
                epochs: 30,
                ..TrainConfig::default()
            },
            ..FuguConfig::default()
        },
    );

    // A fresh poor-network session: after a run of low-quality chunks, ask
    // what would happen for a forced low vs forced high next chunk.
    let truth = poor.generate(3600.0, 30_001);
    let mut abr = Mpc::new();
    let log = run_session(&asset, &mut abr, &truth, &player);
    let n = log.records.len() / 2;
    let sizes = log.chunk_sizes();
    let times = log.download_times();

    let mut table = Table::new(vec![
        "forced_next_chunk",
        "actual_download_s",
        "fugu_predicted_s",
    ]);
    for (label, quality) in [
        ("low_quality", 0usize),
        ("high_quality", asset.num_qualities() - 1),
    ] {
        let candidate_size = asset.size_bytes(n, quality);
        let predicted = fugu.predict_download_time(&sizes[..n], &times[..n], candidate_size);
        // Ground truth: actually download that size at that point in the
        // session, over the same network, from the same TCP state.
        let mut conn = TcpConnection::new(player.link);
        // Warm the connection with the session history so its state matches.
        let mut now = 0.0;
        for r in log.records.iter().take(n) {
            let _ = conn.download(r.size_bytes, r.start_time_s.max(now), &truth);
            now = r.end_time_s;
        }
        let actual = conn
            .download(candidate_size, log.records[n].start_time_s, &truth)
            .duration_s;
        table.push_row(vec![label.to_string(), f3(actual), f3(predicted)]);
    }
    table
}

/// Figure 2(c): observed throughput versus payload size at a constant 18 Mbps
/// link, with random inter-request gaps — the TCP slow-start/size effect.
pub fn fig2c(requests_per_bucket: usize) -> Table {
    let link = LinkModel::paper_default();
    let trace = BandwidthTrace::constant(18.0, 1e6);
    let mut rng = StdRng::seed_from_u64(99);
    let mut table = Table::new(vec![
        "log2_size_kb",
        "samples",
        "p10_mbps",
        "median_mbps",
        "p90_mbps",
    ]);
    for log2_kb in 1..=12u32 {
        let size_bytes = (1u64 << log2_kb) as f64 * 1000.0;
        let mut observed = Vec::with_capacity(requests_per_bucket);
        let mut conn = TcpConnection::new(link);
        let mut now = 0.0;
        for _ in 0..requests_per_bucket {
            let gap: f64 = rng.gen_range(0.12..8.0);
            now += gap;
            let result = conn.download(size_bytes, now, &trace);
            now += result.duration_s;
            observed.push(result.throughput_mbps);
        }
        table.push_row(vec![
            log2_kb.to_string(),
            observed.len().to_string(),
            f3(percentile(&observed, 10.0)),
            f3(percentile(&observed, 50.0)),
            f3(percentile(&observed, 90.0)),
        ]);
    }
    table
}

/// One (absolute error, relative error) sample of the estimator `f` against
/// the ground-truth TCP model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorErrorSample {
    /// `f`'s predicted throughput minus the simulated throughput (Mbps).
    pub error_mbps: f64,
    /// Error relative to the simulated throughput.
    pub relative_error: f64,
}

/// Figure 5: error distribution of the throughput estimator `f` across a
/// sweep of capacities, delays, payload sizes, and inter-request gaps.
pub fn fig5_samples(payloads_per_setting: usize) -> Vec<EstimatorErrorSample> {
    let mut samples = Vec::new();
    let mut rng = StdRng::seed_from_u64(7);
    for &capacity in &[0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0] {
        for &delay_ms in &[5.0, 10.0, 20.0, 40.0] {
            let link = LinkModel::with_rtt(2.0 * delay_ms / 1000.0);
            let trace = BandwidthTrace::constant(capacity, 1e6);
            let mut conn = TcpConnection::new(link);
            let mut now = 0.0;
            for _ in 0..payloads_per_setting {
                let size_bytes: f64 = rng.gen_range(2_000.0..4_000_000.0);
                let gap: f64 = rng.gen_range(0.12..8.0);
                now += gap;
                let info = conn.info_at(now);
                let predicted = estimate_throughput(capacity, &info, size_bytes);
                let result = conn.download(size_bytes, now, &trace);
                now += result.duration_s;
                let actual = result.throughput_mbps;
                samples.push(EstimatorErrorSample {
                    error_mbps: predicted - actual,
                    relative_error: (predicted - actual) / actual.max(1e-6),
                });
            }
        }
    }
    samples
}

/// Renders the Figure 5 CDF of absolute estimator error.
pub fn fig5(payloads_per_setting: usize) -> Table {
    let samples = fig5_samples(payloads_per_setting);
    let abs_errors: Vec<f64> = samples.iter().map(|s| s.error_mbps.abs()).collect();
    let mut table = Table::new(vec!["percentile", "abs_error_mbps"]);
    for p in [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0] {
        table.push_row(vec![format!("{p}"), f3(percentile(&abs_errors, p))]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2c_shows_size_dependent_throughput() {
        let table = fig2c(12);
        assert_eq!(table.len(), 12);
        let csv = table.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        let median_of = |row: &str| -> f64 { row.split(',').nth(3).unwrap().parse().unwrap() };
        // Small payloads see far less than the 18 Mbps link; the largest see
        // most of it.
        assert!(median_of(rows[0]) < 2.0);
        assert!(median_of(rows[11]) > 10.0);
    }

    #[test]
    fn fig5_estimator_error_is_mostly_small() {
        let samples = fig5_samples(6);
        assert!(!samples.is_empty());
        let abs: Vec<f64> = samples.iter().map(|s| s.error_mbps.abs()).collect();
        let median = percentile(&abs, 50.0);
        assert!(
            median < 1.0,
            "median estimator error {median} Mbps should be under 1 Mbps (paper Fig. 5)"
        );
    }
}
