//! Interventional experiments: Figure 12 (download-time prediction for
//! randomized chunk sequences) and the in-text underestimation statistics.

use veritas::{InterventionalPredictor, VeritasConfig};
use veritas_fugu::{FuguConfig, FuguModel, TrainConfig};
use veritas_trace::stats::percentile;

use crate::default_threads;
use crate::report::{f3, mean, Table};
use crate::workload::{randomized_test_corpus, Corpus, CorpusSpec};
use veritas_engine::executor::execute_indexed;

/// One (actual, Fugu-predicted, Veritas-predicted) download-time triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionTriple {
    /// Actual download time in seconds.
    pub actual_s: f64,
    /// Fugu's prediction in seconds.
    pub fugu_s: f64,
    /// Veritas's prediction in seconds.
    pub veritas_s: f64,
}

/// Result of the Figure 12 experiment.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// All prediction triples across the test corpus.
    pub triples: Vec<PredictionTriple>,
    /// Fugu's mean absolute error (seconds).
    pub fugu_mae_s: f64,
    /// Veritas's mean absolute error (seconds).
    pub veritas_mae_s: f64,
    /// The 90th percentile of Fugu's *underestimation* (actual − predicted,
    /// clamped at zero) — the paper reports Fugu underestimating by 5.8 s
    /// for 10% of chunks.
    pub fugu_p90_underestimate_s: f64,
    /// Veritas's 90th-percentile underestimation.
    pub veritas_p90_underestimate_s: f64,
    /// Worst-case Fugu underestimation (seconds).
    pub fugu_max_underestimate_s: f64,
    /// Worst-case Veritas underestimation (seconds).
    pub veritas_max_underestimate_s: f64,
}

/// Runs the Figure 12 experiment: train Fugu on deployed-MPC logs over a
/// 0.5–10 Mbps corpus, then predict chunk download times on random-bitrate
/// test sessions with both Fugu and Veritas.
pub fn fig12(
    training_traces: usize,
    test_traces: usize,
    fugu_epochs: usize,
    config: &VeritasConfig,
) -> Fig12Result {
    let training = CorpusSpec::interventional(training_traces).build();
    let fugu = FuguModel::train_on_logs(
        &training.logs,
        FuguConfig {
            train: TrainConfig {
                epochs: fugu_epochs,
                ..TrainConfig::default()
            },
            ..FuguConfig::default()
        },
    );
    let test = randomized_test_corpus(test_traces, 777);
    let predictor = InterventionalPredictor::new(*config);

    let per_trace: Vec<Vec<PredictionTriple>> =
        execute_indexed(test.logs.len(), default_threads(), |i| {
            let log = &test.logs[i];
            let fugu_preds = fugu.predict_over_log(log);
            let veritas_preds = predictor.predict_over_log(log);
            fugu_preds
                .into_iter()
                .zip(veritas_preds)
                .map(|((fp, actual), (vp, _))| PredictionTriple {
                    actual_s: actual,
                    fugu_s: fp,
                    veritas_s: vp,
                })
                .collect()
        });
    let triples: Vec<PredictionTriple> = per_trace.into_iter().flatten().collect();
    summarize(triples)
}

fn summarize(triples: Vec<PredictionTriple>) -> Fig12Result {
    let fugu_abs: Vec<f64> = triples
        .iter()
        .map(|t| (t.fugu_s - t.actual_s).abs())
        .collect();
    let veritas_abs: Vec<f64> = triples
        .iter()
        .map(|t| (t.veritas_s - t.actual_s).abs())
        .collect();
    let fugu_under: Vec<f64> = triples
        .iter()
        .map(|t| (t.actual_s - t.fugu_s).max(0.0))
        .collect();
    let veritas_under: Vec<f64> = triples
        .iter()
        .map(|t| (t.actual_s - t.veritas_s).max(0.0))
        .collect();
    Fig12Result {
        fugu_mae_s: mean(&fugu_abs),
        veritas_mae_s: mean(&veritas_abs),
        fugu_p90_underestimate_s: percentile(&fugu_under, 90.0),
        veritas_p90_underestimate_s: percentile(&veritas_under, 90.0),
        fugu_max_underestimate_s: fugu_under.iter().cloned().fold(0.0, f64::max),
        veritas_max_underestimate_s: veritas_under.iter().cloned().fold(0.0, f64::max),
        triples,
    }
}

/// Renders the Figure 12 scatter data (one row per predicted chunk).
pub fn fig12_scatter_table(result: &Fig12Result, max_rows: usize) -> Table {
    let mut table = Table::new(vec!["actual_s", "fugu_predicted_s", "veritas_predicted_s"]);
    for t in result.triples.iter().take(max_rows) {
        table.push_row(vec![f3(t.actual_s), f3(t.fugu_s), f3(t.veritas_s)]);
    }
    table
}

/// Renders the Figure 12 summary statistics.
pub fn fig12_summary_table(result: &Fig12Result) -> Table {
    let mut table = Table::new(vec!["metric", "fugu", "veritas"]);
    table.push_row(vec![
        "mae_s".to_string(),
        f3(result.fugu_mae_s),
        f3(result.veritas_mae_s),
    ]);
    table.push_row(vec![
        "p90_underestimate_s".to_string(),
        f3(result.fugu_p90_underestimate_s),
        f3(result.veritas_p90_underestimate_s),
    ]);
    table.push_row(vec![
        "max_underestimate_s".to_string(),
        f3(result.fugu_max_underestimate_s),
        f3(result.veritas_max_underestimate_s),
    ]);
    table
}

/// Helper for building a Fugu training corpus reused by other binaries.
pub fn fugu_training_corpus(traces: usize) -> Corpus {
    CorpusSpec::interventional(traces).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_small_run_shows_fugu_bias() {
        let config = VeritasConfig::paper_default();
        let result = fig12(3, 1, 6, &config);
        assert!(!result.triples.is_empty());
        // Veritas should underestimate less badly than Fugu at the tail.
        assert!(
            result.veritas_p90_underestimate_s <= result.fugu_p90_underestimate_s + 0.5,
            "Veritas p90 underestimate {} vs Fugu {}",
            result.veritas_p90_underestimate_s,
            result.fugu_p90_underestimate_s
        );
        let scatter = fig12_scatter_table(&result, 50);
        assert!(scatter.len() <= 50);
        assert_eq!(fig12_summary_table(&result).len(), 3);
    }
}
