//! Counterfactual experiments: Figures 7, 8, 9, 10, 11, 13 and 14, plus the
//! in-text summary statistics of §4.3.

use veritas::{baseline_trace, Abduction, CounterfactualEngine, Scenario, VeritasConfig};
use veritas_engine::executor::execute_indexed;
use veritas_engine::{Engine, Query, QueryPlan, QueryRecord, QuerySet, ScenarioSpec};
use veritas_media::QualityLadder;
use veritas_player::QoeSummary;
use veritas_trace::stats::trace_mae;

use crate::default_threads;
use crate::report::{f3, f4, median, Table};
use crate::workload::Corpus;

/// Per-trace outcome of one counterfactual query.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOutcome {
    /// Trace index within the corpus.
    pub trace: usize,
    /// Outcome of replaying the scenario on the true GTBW trace.
    pub oracle: QoeSummary,
    /// Outcome of replaying the scenario on the Baseline reconstruction.
    pub baseline: QoeSummary,
    /// Veritas(Low)/(High) and median for each metric.
    pub veritas_ssim: (f64, f64),
    /// Veritas rebuffering range (percent).
    pub veritas_rebuffer: (f64, f64),
    /// Veritas average-bitrate range (Mbps).
    pub veritas_bitrate: (f64, f64),
    /// Veritas median SSIM across samples.
    pub veritas_median_ssim: f64,
    /// Veritas median rebuffering across samples.
    pub veritas_median_rebuffer: f64,
    /// Veritas median bitrate across samples.
    pub veritas_median_bitrate: f64,
}

/// Runs one counterfactual scenario over every trace of a corpus, in
/// parallel, producing the per-trace comparison the paper's figures plot.
///
/// This is the direct path (one ad-hoc abduction per trace). The figure
/// binaries use [`run_paper_scenario_via_engine`] instead, which routes
/// the same computation through the query engine and its abduction cache;
/// the two produce identical outcomes.
pub fn run_counterfactual(
    corpus: &Corpus,
    scenario: &Scenario,
    config: &VeritasConfig,
) -> Vec<TraceOutcome> {
    let engine = CounterfactualEngine::new(*config);
    execute_indexed(corpus.logs.len(), default_threads(), |i| {
        let log = &corpus.logs[i];
        let truth = &corpus.truths[i];
        let cmp = engine.compare(log, truth, scenario);
        TraceOutcome {
            trace: i,
            oracle: cmp.oracle,
            baseline: cmp.baseline,
            veritas_ssim: cmp.veritas.ssim_range(),
            veritas_rebuffer: cmp.veritas.rebuffer_range(),
            veritas_bitrate: cmp.veritas.bitrate_range(),
            veritas_median_ssim: cmp.veritas.median_of(|q| q.mean_ssim),
            veritas_median_rebuffer: cmp.veritas.median_of(|q| q.rebuffer_ratio_percent),
            veritas_median_bitrate: cmp.veritas.median_of(|q| q.avg_bitrate_mbps),
        }
    })
}

/// Converts one engine counterfactual record back into the tabular
/// [`TraceOutcome`] the figure renderers consume.
fn outcome_from_record(trace: usize, record: &QueryRecord) -> TraceOutcome {
    let output = record
        .output
        .as_ref()
        .unwrap_or_else(|| panic!("engine unit failed: {:?}", record.error));
    let veritas = output.veritas.expect("counterfactual output has ranges");
    TraceOutcome {
        trace,
        oracle: output.oracle.expect("corpus carries ground truth"),
        baseline: output.baseline.expect("counterfactual output has baseline"),
        veritas_ssim: (veritas.ssim_low, veritas.ssim_high),
        veritas_rebuffer: (veritas.rebuffer_low, veritas.rebuffer_high),
        veritas_bitrate: (veritas.bitrate_low, veritas.bitrate_high),
        veritas_median_ssim: veritas.ssim_median,
        veritas_median_rebuffer: veritas.rebuffer_median,
        veritas_median_bitrate: veritas.bitrate_median,
    }
}

/// Runs a batch of paper scenarios through the query engine as one
/// [`QuerySet`] — one counterfactual query per scenario, every query over
/// every trace — so all scenarios share a single cached abduction per
/// session. The set is compiled into a [`QueryPlan`] and submitted for
/// streaming execution (`submit(...).wait()`, the batch shape of the
/// compile → execute → consume pipeline). Returns one outcome vector per
/// scenario, in input order.
pub fn run_paper_scenarios_via_engine(
    corpus: &Corpus,
    kinds: &[PaperScenario],
    config: &VeritasConfig,
) -> Vec<Vec<TraceOutcome>> {
    let engine_corpus = corpus.to_engine();
    let mut set = QuerySet::new("paper-counterfactuals", *config);
    for kind in kinds {
        set = set.with_query(Query::counterfactual(kind.figure(), kind.spec()));
    }
    let plan = QueryPlan::compile(&set, &engine_corpus).expect("paper query set is valid");
    let engine = Engine::new().with_threads(default_threads());
    let report = engine
        .submit_shared(
            std::sync::Arc::new(engine_corpus),
            std::sync::Arc::new(plan),
        )
        .expect("plan matches its corpus")
        .wait();
    kinds
        .iter()
        .map(|kind| {
            report
                .records_for(kind.figure())
                .into_iter()
                .enumerate()
                .map(|(trace, record)| outcome_from_record(trace, record))
                .collect()
        })
        .collect()
}

/// Runs one paper scenario through the query engine (see
/// [`run_paper_scenarios_via_engine`]).
pub fn run_paper_scenario_via_engine(
    corpus: &Corpus,
    kind: PaperScenario,
    config: &VeritasConfig,
) -> Vec<TraceOutcome> {
    run_paper_scenarios_via_engine(corpus, &[kind], config)
        .pop()
        .expect("one scenario in, one outcome vector out")
}

/// Renders outcomes as the per-trace table the prediction figures plot
/// (Figures 9, 10, 11, 13).
pub fn outcomes_table(outcomes: &[TraceOutcome]) -> Table {
    let mut table = Table::new(vec![
        "trace",
        "oracle_ssim",
        "veritas_ssim_low",
        "veritas_ssim_high",
        "baseline_ssim",
        "oracle_rebuf_pct",
        "veritas_rebuf_low",
        "veritas_rebuf_high",
        "baseline_rebuf_pct",
        "oracle_bitrate",
        "veritas_bitrate_low",
        "veritas_bitrate_high",
        "baseline_bitrate",
    ]);
    for o in outcomes {
        table.push_row(vec![
            o.trace.to_string(),
            f4(o.oracle.mean_ssim),
            f4(o.veritas_ssim.0),
            f4(o.veritas_ssim.1),
            f4(o.baseline.mean_ssim),
            f3(o.oracle.rebuffer_ratio_percent),
            f3(o.veritas_rebuffer.0),
            f3(o.veritas_rebuffer.1),
            f3(o.baseline.rebuffer_ratio_percent),
            f3(o.oracle.avg_bitrate_mbps),
            f3(o.veritas_bitrate.0),
            f3(o.veritas_bitrate.1),
            f3(o.baseline.avg_bitrate_mbps),
        ]);
    }
    table
}

/// Aggregate error-vs-oracle summary across traces (used at the bottom of
/// each figure binary and by `summary_stats`).
pub fn summary_table(outcomes: &[TraceOutcome]) -> Table {
    let ssim_err_v: Vec<f64> = outcomes
        .iter()
        .map(|o| (o.veritas_median_ssim - o.oracle.mean_ssim).abs())
        .collect();
    let ssim_err_b: Vec<f64> = outcomes
        .iter()
        .map(|o| (o.baseline.mean_ssim - o.oracle.mean_ssim).abs())
        .collect();
    let reb_err_v: Vec<f64> = outcomes
        .iter()
        .map(|o| (o.veritas_median_rebuffer - o.oracle.rebuffer_ratio_percent).abs())
        .collect();
    let reb_err_b: Vec<f64> = outcomes
        .iter()
        .map(|o| (o.baseline.rebuffer_ratio_percent - o.oracle.rebuffer_ratio_percent).abs())
        .collect();
    let bit_err_v: Vec<f64> = outcomes
        .iter()
        .map(|o| (o.veritas_median_bitrate - o.oracle.avg_bitrate_mbps).abs())
        .collect();
    let bit_err_b: Vec<f64> = outcomes
        .iter()
        .map(|o| (o.baseline.avg_bitrate_mbps - o.oracle.avg_bitrate_mbps).abs())
        .collect();
    let mut table = Table::new(vec![
        "metric",
        "veritas_median_abs_err",
        "baseline_median_abs_err",
    ]);
    table.push_row(vec![
        "mean_ssim".to_string(),
        f4(median(&ssim_err_v)),
        f4(median(&ssim_err_b)),
    ]);
    table.push_row(vec![
        "rebuffer_ratio_pct".to_string(),
        f3(median(&reb_err_v)),
        f3(median(&reb_err_b)),
    ]);
    table.push_row(vec![
        "avg_bitrate_mbps".to_string(),
        f3(median(&bit_err_v)),
        f3(median(&bit_err_b)),
    ]);
    table
}

/// Figure 8: the *true* impact of changing the ABR — Setting A and Setting B
/// both replayed on the ground-truth traces.
pub fn fig8_true_impact(corpus: &Corpus, alternative_abr: &str) -> Table {
    let scenario_b = Scenario::new(alternative_abr, corpus.player, corpus.asset.clone());
    let mut table = Table::new(vec![
        "trace",
        "settingA_ssim",
        "settingB_ssim",
        "settingA_rebuf_pct",
        "settingB_rebuf_pct",
    ]);
    let rows = execute_indexed(corpus.logs.len(), default_threads(), |i| {
        let qoe_a = corpus.logs[i].qoe();
        let horizon = corpus.logs[i].session_duration_s.max(
            corpus.logs[i]
                .records
                .last()
                .map(|r| r.end_time_s)
                .unwrap_or(1.0),
        );
        let qoe_b = scenario_b.replay(&corpus.truths[i].with_duration(horizon));
        (i, qoe_a, qoe_b)
    });
    for (i, a, b) in rows {
        table.push_row(vec![
            i.to_string(),
            f4(a.mean_ssim),
            f4(b.mean_ssim),
            f3(a.rebuffer_ratio_percent),
            f3(b.rebuffer_ratio_percent),
        ]);
    }
    table
}

/// Figure 7: GTBW vs Baseline vs Veritas samples for one example trace,
/// tabulated on a fixed time grid, plus reconstruction MAE per series.
pub fn fig7_example(corpus: &Corpus, trace_index: usize, config: &VeritasConfig) -> (Table, Table) {
    let log = &corpus.logs[trace_index];
    let truth = &corpus.truths[trace_index];
    let abduction = Abduction::infer(log, config);
    let samples = abduction.sample_traces(config.num_samples);
    let baseline = baseline_trace(log, config.delta_s);
    let horizon = log.session_duration_s.min(truth.duration());

    let mut header = vec![
        "time_s".to_string(),
        "gtbw_mbps".to_string(),
        "baseline_mbps".to_string(),
    ];
    for i in 0..samples.len() {
        header.push(format!("veritas_sample_{i}"));
    }
    let mut series = Table::new(header);
    let mut t = config.delta_s / 2.0;
    while t < horizon {
        let mut row = vec![
            format!("{t:.0}"),
            f3(truth.bandwidth_at(t)),
            f3(baseline.bandwidth_at(t)),
        ];
        for s in &samples {
            row.push(f3(s.bandwidth_at(t)));
        }
        series.push_row(row);
        t += config.delta_s;
    }

    let truth_cut = truth.with_duration(horizon);
    let mut errors = Table::new(vec!["series", "mae_mbps"]);
    errors.push_row(vec![
        "baseline".to_string(),
        f3(trace_mae(&truth_cut, &baseline, config.delta_s)),
    ]);
    for (i, s) in samples.iter().enumerate() {
        errors.push_row(vec![
            format!("veritas_sample_{i}"),
            f3(trace_mae(&truth_cut, s, config.delta_s)),
        ]);
    }
    errors.push_row(vec![
        "veritas_viterbi".to_string(),
        f3(trace_mae(
            &truth_cut,
            &abduction.viterbi_trace(),
            config.delta_s,
        )),
    ]);
    (series, errors)
}

/// The standard counterfactual scenarios of §4.3 and the appendix.
pub enum PaperScenario {
    /// Figure 9: change the ABR from MPC to BBA.
    AbrToBba,
    /// Figure 13 (appendix): change the ABR from MPC to BOLA.
    AbrToBola,
    /// Figure 10: raise the buffer from 5 s to 30 s.
    Buffer30s,
    /// Figure 11: offer a higher quality ladder.
    HigherQualities,
}

impl PaperScenario {
    /// Builds the concrete [`Scenario`] for a corpus.
    pub fn scenario(&self, corpus: &Corpus) -> Scenario {
        match self {
            PaperScenario::AbrToBba => Scenario::new("bba", corpus.player, corpus.asset.clone()),
            PaperScenario::AbrToBola => Scenario::new("bola", corpus.player, corpus.asset.clone()),
            PaperScenario::Buffer30s => Scenario::new(
                &corpus.deployed_abr,
                corpus.player.with_buffer_capacity(30.0),
                corpus.asset.clone(),
            ),
            PaperScenario::HigherQualities => Scenario::new(
                &corpus.deployed_abr,
                corpus.player,
                corpus
                    .asset
                    .reencoded(QualityLadder::paper_higher_qualities()),
            ),
        }
    }

    /// The declarative engine spec of this scenario — what
    /// [`Self::scenario`] builds, expressed as intervention parameters on
    /// top of the corpus's deployed setting.
    pub fn spec(&self) -> ScenarioSpec {
        match self {
            PaperScenario::AbrToBba => ScenarioSpec::abr("bba"),
            PaperScenario::AbrToBola => ScenarioSpec::abr("bola"),
            PaperScenario::Buffer30s => ScenarioSpec::buffer(30.0),
            PaperScenario::HigherQualities => ScenarioSpec::ladder("higher"),
        }
    }

    /// The figure this scenario reproduces.
    pub fn figure(&self) -> &'static str {
        match self {
            PaperScenario::AbrToBba => "Figure 9",
            PaperScenario::AbrToBola => "Figure 13",
            PaperScenario::Buffer30s => "Figure 10",
            PaperScenario::HigherQualities => "Figure 11",
        }
    }
}

/// Figure 14: average bitrate comparison for every counterfactual query.
///
/// All four scenarios run as one engine [`QuerySet`], so the corpus is
/// abduced once per trace instead of once per (trace, scenario) — a 4×
/// reduction in inference work for this figure.
pub fn fig14_bitrates(corpus: &Corpus, config: &VeritasConfig) -> Table {
    let kinds = [
        PaperScenario::AbrToBba,
        PaperScenario::AbrToBola,
        PaperScenario::Buffer30s,
        PaperScenario::HigherQualities,
    ];
    let per_scenario = run_paper_scenarios_via_engine(corpus, &kinds, config);
    let mut table = Table::new(vec![
        "query",
        "oracle_bitrate_mbps",
        "veritas_median_bitrate",
        "baseline_bitrate_mbps",
    ]);
    for (scenario_kind, outcomes) in kinds.iter().zip(per_scenario) {
        let oracle: Vec<f64> = outcomes.iter().map(|o| o.oracle.avg_bitrate_mbps).collect();
        let veritas: Vec<f64> = outcomes.iter().map(|o| o.veritas_median_bitrate).collect();
        let baseline: Vec<f64> = outcomes
            .iter()
            .map(|o| o.baseline.avg_bitrate_mbps)
            .collect();
        table.push_row(vec![
            scenario_kind.figure().to_string(),
            f3(median(&oracle)),
            f3(median(&veritas)),
            f3(median(&baseline)),
        ]);
    }
    table
}

/// The in-text §4.3 claim: for the change-of-qualities query, the Baseline
/// predicts a large median rebuffering ratio while Veritas and the oracle
/// predict (near) zero. Returns `(oracle, veritas, baseline)` median
/// rebuffering percentages.
pub fn qualities_rebuffer_medians(corpus: &Corpus, config: &VeritasConfig) -> (f64, f64, f64) {
    let outcomes = run_paper_scenario_via_engine(corpus, PaperScenario::HigherQualities, config);
    let oracle: Vec<f64> = outcomes
        .iter()
        .map(|o| o.oracle.rebuffer_ratio_percent)
        .collect();
    let veritas: Vec<f64> = outcomes.iter().map(|o| o.veritas_median_rebuffer).collect();
    let baseline: Vec<f64> = outcomes
        .iter()
        .map(|o| o.baseline.rebuffer_ratio_percent)
        .collect();
    (median(&oracle), median(&veritas), median(&baseline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::CorpusSpec;

    fn tiny_corpus() -> Corpus {
        CorpusSpec {
            traces: 2,
            video_duration_s: 120.0,
            ..CorpusSpec::counterfactual(2)
        }
        .build()
    }

    #[test]
    fn counterfactual_runner_produces_one_outcome_per_trace() {
        let corpus = tiny_corpus();
        let config = VeritasConfig::paper_default().with_samples(2);
        let scenario = PaperScenario::AbrToBba.scenario(&corpus);
        let outcomes = run_counterfactual(&corpus, &scenario, &config);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.veritas_ssim.0 <= o.veritas_ssim.1 + 1e-12);
            assert!(o.oracle.mean_ssim > 0.8);
        }
        let table = outcomes_table(&outcomes);
        assert_eq!(table.len(), 2);
        assert_eq!(summary_table(&outcomes).len(), 3);
    }

    #[test]
    fn engine_path_matches_the_direct_path_exactly() {
        let corpus = tiny_corpus();
        let config = VeritasConfig::paper_default().with_samples(2);
        let kinds = [PaperScenario::AbrToBba, PaperScenario::Buffer30s];
        let via_engine = run_paper_scenarios_via_engine(&corpus, &kinds, &config);
        for (kind, engine_outcomes) in kinds.iter().zip(via_engine) {
            let direct = run_counterfactual(&corpus, &kind.scenario(&corpus), &config);
            assert_eq!(
                engine_outcomes,
                direct,
                "{} must be identical through the engine",
                kind.figure()
            );
        }
    }

    #[test]
    fn fig7_series_covers_the_session() {
        let corpus = tiny_corpus();
        let config = VeritasConfig::paper_default().with_samples(2);
        let (series, errors) = fig7_example(&corpus, 0, &config);
        assert!(series.len() > 10);
        assert_eq!(errors.len(), 2 + 2); // baseline + 2 samples + viterbi
    }

    #[test]
    fn fig8_reports_both_settings() {
        let corpus = tiny_corpus();
        let table = fig8_true_impact(&corpus, "bba");
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn paper_scenarios_build() {
        let corpus = tiny_corpus();
        for kind in [
            PaperScenario::AbrToBba,
            PaperScenario::AbrToBola,
            PaperScenario::Buffer30s,
            PaperScenario::HigherQualities,
        ] {
            let s = kind.scenario(&corpus);
            assert!(!s.abr.is_empty());
            assert!(!kind.figure().is_empty());
        }
    }
}
