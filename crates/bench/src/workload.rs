//! Standard workloads used across the figure reproductions.

use veritas_abr::{abr_by_name, Abr};
use veritas_media::{QualityLadder, VbrParams, VideoAsset};
use veritas_player::{run_session, PlayerConfig, SessionLog};
use veritas_trace::generators::{FccLike, TraceGenerator};
use veritas_trace::BandwidthTrace;

/// A corpus of ground-truth traces plus the deployed-setting logs recorded
/// over them — the raw material of every counterfactual experiment.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The video asset streamed in every session.
    pub asset: VideoAsset,
    /// The deployed player configuration (Setting A).
    pub player: PlayerConfig,
    /// Name of the deployed ABR (Setting A).
    pub deployed_abr: String,
    /// Ground-truth bandwidth traces (hidden from inference).
    pub truths: Vec<BandwidthTrace>,
    /// One recorded session log per trace.
    pub logs: Vec<SessionLog>,
}

/// Parameters for building a [`Corpus`].
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Number of traces/sessions.
    pub traces: usize,
    /// Per-trace mean bandwidth range in Mbps (FCC-like sampling).
    pub bandwidth_range_mbps: (f64, f64),
    /// Deployed ABR name.
    pub deployed_abr: String,
    /// Deployed player configuration.
    pub player: PlayerConfig,
    /// Video duration in seconds.
    pub video_duration_s: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        Self {
            traces: 40,
            bandwidth_range_mbps: (3.0, 8.0),
            deployed_abr: "mpc".to_string(),
            player: PlayerConfig::paper_default(),
            video_duration_s: 600.0,
            seed: 20_240_001,
        }
    }
}

impl CorpusSpec {
    /// The paper's counterfactual corpus (§4.1): FCC-like traces with means
    /// in 3–8 Mbps, MPC deployed with a 5 s buffer, 10-minute video.
    pub fn counterfactual(traces: usize) -> Self {
        Self {
            traces,
            ..Self::default()
        }
    }

    /// The paper's interventional corpus (§4.4): per-trace means spanning
    /// 0.5–10 Mbps.
    pub fn interventional(traces: usize) -> Self {
        Self {
            traces,
            bandwidth_range_mbps: (0.5, 10.0),
            ..Self::default()
        }
    }

    /// Builds the corpus: generates traces, runs the deployed setting over
    /// each, and records the logs.
    pub fn build(&self) -> Corpus {
        let asset = VideoAsset::generate(
            QualityLadder::paper_default(),
            self.video_duration_s,
            2.0,
            VbrParams::default(),
            self.seed,
        );
        let generator = FccLike::new(self.bandwidth_range_mbps.0, self.bandwidth_range_mbps.1);
        // Traces must outlast the session even under poor conditions.
        let trace_duration = self.video_duration_s * 6.0;
        let truths: Vec<BandwidthTrace> = (0..self.traces as u64)
            .map(|i| generator.generate(trace_duration, self.seed ^ (0x9E37 + i)))
            .collect();
        let logs = truths
            .iter()
            .map(|truth| {
                let mut abr = self.deployed_abr_instance();
                run_session(&asset, abr.as_mut(), truth, &self.player)
            })
            .collect();
        Corpus {
            asset,
            player: self.player,
            deployed_abr: self.deployed_abr.clone(),
            truths,
            logs,
        }
    }

    fn deployed_abr_instance(&self) -> Box<dyn Abr> {
        abr_by_name(&self.deployed_abr)
            .unwrap_or_else(|| panic!("unknown deployed ABR {}", self.deployed_abr))
    }
}

/// Builds a corpus whose sessions use randomized bitrate choices — the test
/// set for interventional download-time prediction (chunk sizes uncorrelated
/// with network conditions).
pub fn randomized_test_corpus(traces: usize, seed: u64) -> Corpus {
    let spec = CorpusSpec::interventional(traces);
    let asset = VideoAsset::generate(
        QualityLadder::paper_default(),
        spec.video_duration_s,
        2.0,
        VbrParams::default(),
        spec.seed,
    );
    let generator = FccLike::new(spec.bandwidth_range_mbps.0, spec.bandwidth_range_mbps.1);
    let trace_duration = spec.video_duration_s * 6.0;
    let truths: Vec<BandwidthTrace> = (0..traces as u64)
        .map(|i| generator.generate(trace_duration, seed ^ (0xBEEF + i)))
        .collect();
    let logs = truths
        .iter()
        .enumerate()
        .map(|(i, truth)| {
            let mut abr = veritas_abr::RandomAbr::new(seed.wrapping_add(i as u64));
            run_session(&asset, &mut abr, truth, &spec.player)
        })
        .collect();
    Corpus {
        asset,
        player: spec.player,
        deployed_abr: "random".to_string(),
        truths,
        logs,
    }
}

/// Reads the number of traces from the first CLI argument or an environment
/// variable (`VERITAS_TRACES`), falling back to `default`.
pub fn traces_from_env(default: usize) -> usize {
    if let Some(arg) = std::env::args().nth(1) {
        if let Ok(n) = arg.trim_start_matches("--traces=").parse::<usize>() {
            return n.max(1);
        }
    }
    std::env::var("VERITAS_TRACES")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|n: usize| n.max(1))
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_builds_matching_truths_and_logs() {
        let spec = CorpusSpec {
            traces: 2,
            video_duration_s: 60.0,
            ..CorpusSpec::counterfactual(2)
        };
        let corpus = spec.build();
        assert_eq!(corpus.truths.len(), 2);
        assert_eq!(corpus.logs.len(), 2);
        for log in &corpus.logs {
            assert_eq!(log.abr_name, "MPC");
            assert_eq!(log.records.len(), corpus.asset.num_chunks());
            log.check_invariants()
                .expect("corpus logs must be consistent");
        }
    }

    #[test]
    fn randomized_corpus_uses_random_abr() {
        let corpus = randomized_test_corpus(1, 5);
        assert_eq!(corpus.logs[0].abr_name, "Random");
    }

    #[test]
    fn interventional_spec_widens_the_bandwidth_range() {
        let spec = CorpusSpec::interventional(3);
        assert_eq!(spec.bandwidth_range_mbps, (0.5, 10.0));
        assert_eq!(spec.traces, 3);
    }
}
