//! Standard workloads used across the figure reproductions.

use veritas_media::{QualityLadder, VbrParams, VideoAsset};
use veritas_player::{run_session, PlayerConfig, SessionLog};
use veritas_trace::generators::{FccLike, TraceGenerator};
use veritas_trace::BandwidthTrace;

/// A corpus of ground-truth traces plus the deployed-setting logs recorded
/// over them — the raw material of every counterfactual experiment.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The video asset streamed in every session.
    pub asset: VideoAsset,
    /// The deployed player configuration (Setting A).
    pub player: PlayerConfig,
    /// Name of the deployed ABR (Setting A).
    pub deployed_abr: String,
    /// Ground-truth bandwidth traces (hidden from inference).
    pub truths: Vec<BandwidthTrace>,
    /// One recorded session log per trace.
    pub logs: Vec<SessionLog>,
}

/// Parameters for building a [`Corpus`].
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Number of traces/sessions.
    pub traces: usize,
    /// Per-trace mean bandwidth range in Mbps (FCC-like sampling).
    pub bandwidth_range_mbps: (f64, f64),
    /// Deployed ABR name.
    pub deployed_abr: String,
    /// Deployed player configuration.
    pub player: PlayerConfig,
    /// Video duration in seconds.
    pub video_duration_s: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        Self {
            traces: 40,
            bandwidth_range_mbps: (3.0, 8.0),
            deployed_abr: "mpc".to_string(),
            player: PlayerConfig::paper_default(),
            video_duration_s: 600.0,
            seed: 20_240_001,
        }
    }
}

impl CorpusSpec {
    /// The paper's counterfactual corpus (§4.1): FCC-like traces with means
    /// in 3–8 Mbps, MPC deployed with a 5 s buffer, 10-minute video.
    pub fn counterfactual(traces: usize) -> Self {
        Self {
            traces,
            ..Self::default()
        }
    }

    /// The paper's interventional corpus (§4.4): per-trace means spanning
    /// 0.5–10 Mbps.
    pub fn interventional(traces: usize) -> Self {
        Self {
            traces,
            bandwidth_range_mbps: (0.5, 10.0),
            ..Self::default()
        }
    }

    /// Builds the corpus: generates traces, runs the deployed setting over
    /// each, and records the logs. The synthesis recipe itself lives in
    /// [`veritas_engine::SyntheticSpec`]; this just maps the result into
    /// the bench harness's parallel-arrays shape.
    pub fn build(&self) -> Corpus {
        let engine_corpus = veritas_engine::SyntheticSpec {
            sessions: self.traces,
            bandwidth_range_mbps: self.bandwidth_range_mbps,
            deployed_abr: self.deployed_abr.clone(),
            player: self.player,
            video_duration_s: self.video_duration_s,
            seed: self.seed,
        }
        .build();
        let (truths, logs) = engine_corpus
            .sessions
            .into_iter()
            .map(|s| (s.truth.expect("synthetic sessions carry truth"), s.log))
            .unzip();
        Corpus {
            asset: engine_corpus.asset,
            player: engine_corpus.player,
            deployed_abr: engine_corpus.deployed_abr,
            truths,
            logs,
        }
    }
}

impl Corpus {
    /// Converts this corpus into the query engine's representation, keeping
    /// the ground-truth traces so counterfactual queries report oracle
    /// outcomes. Session ids are `trace-N`, matching the corpus index.
    pub fn to_engine(&self) -> veritas_engine::SessionCorpus {
        veritas_engine::SessionCorpus {
            asset: self.asset.clone(),
            player: self.player,
            deployed_abr: self.deployed_abr.clone(),
            sessions: self
                .truths
                .iter()
                .zip(&self.logs)
                .enumerate()
                .map(|(i, (truth, log))| veritas_engine::CorpusSession {
                    id: format!("trace-{i}"),
                    log: log.clone(),
                    truth: Some(truth.clone()),
                })
                .collect(),
        }
    }
}

/// Builds a corpus whose sessions use randomized bitrate choices — the test
/// set for interventional download-time prediction (chunk sizes uncorrelated
/// with network conditions).
pub fn randomized_test_corpus(traces: usize, seed: u64) -> Corpus {
    let spec = CorpusSpec::interventional(traces);
    let asset = VideoAsset::generate(
        QualityLadder::paper_default(),
        spec.video_duration_s,
        2.0,
        VbrParams::default(),
        spec.seed,
    );
    let generator = FccLike::new(spec.bandwidth_range_mbps.0, spec.bandwidth_range_mbps.1);
    let trace_duration = spec.video_duration_s * 6.0;
    let truths: Vec<BandwidthTrace> = (0..traces as u64)
        .map(|i| generator.generate(trace_duration, seed ^ (0xBEEF + i)))
        .collect();
    let logs = truths
        .iter()
        .enumerate()
        .map(|(i, truth)| {
            let mut abr = veritas_abr::RandomAbr::new(seed.wrapping_add(i as u64));
            run_session(&asset, &mut abr, truth, &spec.player)
        })
        .collect();
    Corpus {
        asset,
        player: spec.player,
        deployed_abr: "random".to_string(),
        truths,
        logs,
    }
}

/// Reads the number of traces from the first CLI argument or an environment
/// variable (`VERITAS_TRACES`), falling back to `default`.
pub fn traces_from_env(default: usize) -> usize {
    if let Some(arg) = std::env::args().nth(1) {
        if let Ok(n) = arg.trim_start_matches("--traces=").parse::<usize>() {
            return n.max(1);
        }
    }
    std::env::var("VERITAS_TRACES")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|n: usize| n.max(1))
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_builds_matching_truths_and_logs() {
        let spec = CorpusSpec {
            traces: 2,
            video_duration_s: 60.0,
            ..CorpusSpec::counterfactual(2)
        };
        let corpus = spec.build();
        assert_eq!(corpus.truths.len(), 2);
        assert_eq!(corpus.logs.len(), 2);
        for log in &corpus.logs {
            assert_eq!(log.abr_name, "MPC");
            assert_eq!(log.records.len(), corpus.asset.num_chunks());
            log.check_invariants()
                .expect("corpus logs must be consistent");
        }
    }

    #[test]
    fn randomized_corpus_uses_random_abr() {
        let corpus = randomized_test_corpus(1, 5);
        assert_eq!(corpus.logs[0].abr_name, "Random");
    }

    #[test]
    fn interventional_spec_widens_the_bandwidth_range() {
        let spec = CorpusSpec::interventional(3);
        assert_eq!(spec.bandwidth_range_mbps, (0.5, 10.0));
        assert_eq!(spec.traces, 3);
    }
}
