//! Experiment harness for reproducing every figure in the Veritas paper.
//!
//! The library half holds reusable workload builders, a small parallel map,
//! and the per-figure experiment functions; the binaries under `src/bin/`
//! are thin wrappers that run one experiment each and print the series the
//! corresponding paper figure plots (see `DESIGN.md` §4 for the
//! figure-to-binary index and `EXPERIMENTS.md` for recorded results).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod experiments;
pub mod report;
pub mod workload;

use parking_lot::Mutex;

/// Maps `f` over `items` using up to `threads` worker threads, preserving
/// input order in the output. Used to spread independent per-trace
/// experiments across cores.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1);
    let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = Mutex::new(work);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().pop();
                match next {
                    Some((idx, item)) => {
                        let out = f(item);
                        results.lock().push((idx, out));
                    }
                    None => break,
                }
            });
        }
    });
    let mut collected = results.into_inner();
    collected.sort_by_key(|(idx, _)| *idx);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Number of worker threads to use by default: the available parallelism
/// minus one, at least one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), 4, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_thread_works() {
        let out = parallel_map(vec!["a", "bb", "ccc"], 1, |s: &str| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
