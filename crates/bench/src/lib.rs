//! Experiment harness for reproducing every figure in the Veritas paper.
//!
//! The library half holds reusable workload builders and the per-figure
//! experiment functions; the binaries under `src/bin/` are thin wrappers
//! that run one experiment each and print the series the corresponding
//! paper figure plots. The README's "Reproducing paper figures" section is
//! the figure-to-binary index.
//!
//! Parallelism comes from [`veritas_engine::executor`] (an atomic-cursor
//! worker pool); the counterfactual figure experiments additionally route
//! their work through the [`veritas_engine::Engine`] so that every
//! scenario over a given session shares one cached abduction.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod experiments;
pub mod report;
pub mod workload;

use parking_lot::Mutex;

pub use veritas_engine::executor::default_threads;

/// Maps `f` over `items` using up to `threads` worker threads, preserving
/// input order in the output.
///
/// Kept as a convenience wrapper over
/// [`veritas_engine::executor::execute`]: jobs are claimed through the
/// executor's lock-free atomic cursor rather than a shared locked queue,
/// so wide corpora no longer contend on a single `Mutex<Vec>`. The
/// per-item mutex below only exists to move each owned item out of the
/// shared slice; it is touched exactly once per item, by the worker that
/// claimed it, and is never contended. Call sites that already work with
/// indices should prefer [`veritas_engine::executor::execute_indexed`].
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    veritas_engine::executor::execute(&slots, threads, |slot| {
        let item = slot
            .lock()
            .take()
            .expect("each job slot is claimed exactly once");
        f(item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), 4, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_thread_works() {
        let out = parallel_map(vec!["a", "bb", "ccc"], 1, |s: &str| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
