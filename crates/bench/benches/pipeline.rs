//! Criterion benchmarks of the end-to-end pipelines: session emulation,
//! full abduction on a recorded session, a complete counterfactual
//! comparison (abduction + K replays + baseline + oracle), and the query
//! engine (cached vs uncached execution of a shared-session query set).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use veritas::{Abduction, CounterfactualEngine, Scenario, VeritasConfig};
use veritas_abr::Mpc;
use veritas_engine::{Engine, QuerySet, SyntheticSpec};
use veritas_media::{QualityLadder, VbrParams, VideoAsset};
use veritas_player::{run_session, PlayerConfig};
use veritas_trace::generators::{FccLike, TraceGenerator};

fn bench_pipeline(c: &mut Criterion) {
    let asset = VideoAsset::generate(
        QualityLadder::paper_default(),
        240.0,
        2.0,
        VbrParams::default(),
        1,
    );
    let player = PlayerConfig::paper_default();
    let truth = FccLike::new(3.0, 8.0).generate(1200.0, 9);
    let mut abr = Mpc::new();
    let log = run_session(&asset, &mut abr, &truth, &player);
    let config = VeritasConfig::paper_default().with_samples(3);

    c.bench_function("emulate_session_120_chunks", |b| {
        b.iter(|| {
            let mut abr = Mpc::new();
            run_session(
                black_box(&asset),
                &mut abr,
                black_box(&truth),
                black_box(&player),
            )
        })
    });

    c.bench_function("abduction_120_chunks", |b| {
        b.iter(|| Abduction::infer(black_box(&log), black_box(&config)))
    });

    c.bench_function("counterfactual_compare_120_chunks", |b| {
        let engine = CounterfactualEngine::new(config);
        let scenario = Scenario::new("bba", player, asset.clone());
        b.iter(|| engine.compare(black_box(&log), black_box(&truth), black_box(&scenario)))
    });
}

fn bench_engine(c: &mut Criterion) {
    // The acceptance workload: a 10-query set over a 4-session corpus
    // where every query touches every session. Cached execution abduces
    // once per session; uncached once per (query, session) unit — the
    // ratio of these two benches is the cache's speedup (>= 2x expected).
    let corpus = SyntheticSpec {
        sessions: 4,
        video_duration_s: 120.0,
        ..SyntheticSpec::default()
    }
    .build();
    let set = QuerySet::cache_stress(10);

    c.bench_function("engine/queryset_10q4s_uncached", |b| {
        b.iter(|| {
            let engine = Engine::new().with_threads(1).without_cache();
            engine.run(black_box(&corpus), black_box(&set)).unwrap()
        })
    });
    c.bench_function("engine/queryset_10q4s_cached", |b| {
        b.iter(|| {
            let engine = Engine::new().with_threads(1);
            let report = engine.run(black_box(&corpus), black_box(&set)).unwrap();
            assert_eq!(report.summary.cache_misses, 4);
            report
        })
    });

    // The CI smoke workload: the 3-query example set over a 5-session
    // corpus (tracked in BENCH_baseline.json as engine_queryset_small).
    let small_corpus = SyntheticSpec {
        sessions: 5,
        video_duration_s: 120.0,
        ..SyntheticSpec::default()
    }
    .build();
    let small_set = QuerySet::example();
    c.bench_function("engine_queryset_small", |b| {
        b.iter(|| {
            let engine = Engine::new().with_threads(1);
            engine
                .run(black_box(&small_corpus), black_box(&small_set))
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline, bench_engine
}
criterion_main!(benches);
