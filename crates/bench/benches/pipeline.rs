//! Criterion benchmarks of the end-to-end pipelines: session emulation,
//! full abduction on a recorded session, and a complete counterfactual
//! comparison (abduction + K replays + baseline + oracle).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use veritas::{Abduction, CounterfactualEngine, Scenario, VeritasConfig};
use veritas_abr::Mpc;
use veritas_media::{QualityLadder, VbrParams, VideoAsset};
use veritas_player::{run_session, PlayerConfig};
use veritas_trace::generators::{FccLike, TraceGenerator};

fn bench_pipeline(c: &mut Criterion) {
    let asset = VideoAsset::generate(
        QualityLadder::paper_default(),
        240.0,
        2.0,
        VbrParams::default(),
        1,
    );
    let player = PlayerConfig::paper_default();
    let truth = FccLike::new(3.0, 8.0).generate(1200.0, 9);
    let mut abr = Mpc::new();
    let log = run_session(&asset, &mut abr, &truth, &player);
    let config = VeritasConfig::paper_default().with_samples(3);

    c.bench_function("emulate_session_120_chunks", |b| {
        b.iter(|| {
            let mut abr = Mpc::new();
            run_session(
                black_box(&asset),
                &mut abr,
                black_box(&truth),
                black_box(&player),
            )
        })
    });

    c.bench_function("abduction_120_chunks", |b| {
        b.iter(|| Abduction::infer(black_box(&log), black_box(&config)))
    });

    c.bench_function("counterfactual_compare_120_chunks", |b| {
        let engine = CounterfactualEngine::new(config);
        let scenario = Scenario::new("bba", player, asset.clone());
        b.iter(|| engine.compare(black_box(&log), black_box(&truth), black_box(&scenario)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
