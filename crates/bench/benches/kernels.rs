//! Criterion micro-benchmarks of the computational kernels: the EHMM
//! algorithms, the TCP throughput estimator, the round-level TCP model, and
//! the MPC lookahead.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use veritas::{Abduction, VeritasConfig};
use veritas_abr::{Abr, AbrContext, Mpc};
use veritas_ehmm::{
    forward_backward, sample_path, viterbi, EhmmSpec, EmissionTable, TransitionMatrix,
};
use veritas_media::{QualityLadder, VbrParams, VideoAsset};
use veritas_net::{estimate_throughput, LinkModel, TcpConnection, TcpInfo};
use veritas_player::{run_session, PlayerConfig};
use veritas_trace::generators::{FccLike, TraceGenerator};
use veritas_trace::BandwidthTrace;

fn emission_table(num_obs: usize, num_states: usize) -> EmissionTable {
    let rows: Vec<Vec<f64>> = (0..num_obs)
        .map(|n| {
            let target = (n * 7) % num_states;
            (0..num_states)
                .map(|i| -0.5 * ((i as f64 - target as f64) / 1.5).powi(2))
                .collect()
        })
        .collect();
    let gaps: Vec<u32> = (0..num_obs)
        .map(|n| if n == 0 { 0 } else { 1 + (n % 3) as u32 })
        .collect();
    EmissionTable::new(rows, gaps)
}

fn bench_ehmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ehmm");
    for &num_obs in &[50usize, 300] {
        let num_states = 21;
        let spec = EhmmSpec::with_uniform_initial(TransitionMatrix::tridiagonal(num_states, 0.8));
        let obs = emission_table(num_obs, num_states);
        group.bench_with_input(BenchmarkId::new("viterbi", num_obs), &num_obs, |b, _| {
            b.iter(|| viterbi(black_box(&spec), black_box(&obs)))
        });
        group.bench_with_input(
            BenchmarkId::new("forward_backward", num_obs),
            &num_obs,
            |b, _| b.iter(|| forward_backward(black_box(&spec), black_box(&obs))),
        );
        let vit = viterbi(&spec, &obs);
        let post = forward_backward(&spec, &obs);
        group.bench_with_input(
            BenchmarkId::new("sample_path", num_obs),
            &num_obs,
            |b, _| {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                b.iter(|| sample_path(black_box(&post), black_box(&vit), &mut rng))
            },
        );
    }
    // The xi-heavy shape: a fine capacity grid (large K) makes the pairwise
    // posterior Γ the dominant cost of forward–backward (N·K² writes).
    {
        let num_states = 63;
        let spec = EhmmSpec::with_uniform_initial(TransitionMatrix::tridiagonal(num_states, 0.8));
        let obs = emission_table(120, num_states);
        group.bench_with_input(
            BenchmarkId::new("forward_backward_largek", 120),
            &120usize,
            |b, _| b.iter(|| forward_backward(black_box(&spec), black_box(&obs))),
        );
    }
    group.finish();
}

/// Full-abduction scaling cases: 600- and 1200-chunk session logs (the
/// serving-scale shapes the engine sees), complementing the 120-chunk case
/// tracked by the pipeline bench.
fn bench_abduction_scaling(c: &mut Criterion) {
    let config = VeritasConfig::paper_default();
    for &chunks in &[600usize, 1200] {
        // chunk_duration_s = 2.0, so the video (and trace) must span 2·N s.
        let duration = 2.0 * chunks as f64;
        let asset = VideoAsset::generate(
            QualityLadder::paper_default(),
            duration,
            2.0,
            VbrParams::default(),
            1,
        );
        let truth = FccLike::new(3.0, 8.0).generate(duration, 9);
        let mut abr = Mpc::new();
        let log = run_session(&asset, &mut abr, &truth, &PlayerConfig::paper_default());
        assert!(
            log.records.len() >= chunks * 9 / 10,
            "expected ~{chunks} chunks, got {}",
            log.records.len()
        );
        c.bench_function(&format!("abduction_{chunks}_chunks"), |b| {
            b.iter(|| Abduction::infer(black_box(&log), black_box(&config)))
        });
    }
}

fn bench_tcp(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcp");
    let info = TcpInfo {
        cwnd_segments: 10.0,
        ssthresh_segments: 1000.0,
        rto_s: 0.3,
        srtt_s: 0.08,
        min_rtt_s: 0.08,
        last_send_gap_s: 2.0,
    };
    group.bench_function("estimator_f_1mb", |b| {
        b.iter(|| estimate_throughput(black_box(6.0), black_box(&info), black_box(1_000_000.0)))
    });
    group.bench_function("connection_download_1mb", |b| {
        let trace = BandwidthTrace::constant(6.0, 1e6);
        b.iter(|| {
            let mut conn = TcpConnection::new(LinkModel::paper_default());
            conn.download(black_box(1_000_000.0), 0.0, black_box(&trace))
        })
    });
    group.finish();
}

fn bench_abr(c: &mut Criterion) {
    let asset = VideoAsset::paper_default(1);
    let history = [3.0, 4.0, 5.0, 4.5, 3.8];
    let dt = [1.0, 0.9, 1.1, 1.0, 1.2];
    let ctx = AbrContext {
        asset: &asset,
        next_chunk: 50,
        buffer_s: 3.5,
        buffer_capacity_s: 5.0,
        throughput_history_mbps: &history,
        download_time_history_s: &dt,
        last_quality: Some(2),
    };
    c.bench_function("mpc_lookahead_horizon5", |b| {
        let mut mpc = Mpc::new();
        b.iter(|| mpc.choose(black_box(&ctx)))
    });
}

/// The storage-layer projection pin: a 3-column aggregate pass over a
/// 1000-session `.vcorp`, re-decoding every block each iteration (the
/// resident bound of 1 defeats the cache). The companion full-decode
/// bench gives the ratio projection is expected to beat.
fn bench_store(c: &mut Criterion) {
    use veritas_engine::{columns, ColumnSet, LazyCorpus, SyntheticSpec, VcorpWriter};
    use veritas_engine::{CorpusMeta, SessionCorpus};

    let corpus: SessionCorpus = SyntheticSpec {
        sessions: 1000,
        video_duration_s: 120.0,
        ..SyntheticSpec::default()
    }
    .try_build()
    .expect("synthetic corpus");
    let path =
        std::env::temp_dir().join(format!("veritas_bench_store_{}.vcorp", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut writer = VcorpWriter::create(&path, &CorpusMeta::for_log(&corpus.sessions[0].log))
        .expect("create .vcorp");
    for session in &corpus.sessions {
        writer.append(&session.id, &session.log).expect("append");
    }
    writer.finish().expect("finish .vcorp");

    let cols = ColumnSet::of(&[columns::SSIM, columns::SIZE_BYTES, columns::REBUFFER_S]);
    let mut group = c.benchmark_group("store");
    group.bench_function("projected_aggregate_1000", |b| {
        let lazy = LazyCorpus::open(&path).expect("open").with_max_resident(1);
        b.iter(|| {
            let mut acc = 0.0_f64;
            for index in 0..lazy.len() {
                let log = lazy
                    .load_log_projected(index, black_box(cols))
                    .expect("projected decode");
                for record in &log.records {
                    acc += record.ssim + record.size_bytes + record.rebuffer_s;
                }
            }
            acc
        })
    });
    group.bench_function("full_aggregate_1000", |b| {
        let lazy = LazyCorpus::open(&path).expect("open").with_max_resident(1);
        b.iter(|| {
            let mut acc = 0.0_f64;
            for index in 0..lazy.len() {
                let log = lazy.load_log(index).expect("full decode");
                for record in &log.records {
                    acc += record.ssim + record.size_bytes + record.rebuffer_s;
                }
            }
            acc
        })
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

criterion_group!(
    benches,
    bench_ehmm,
    bench_abduction_scaling,
    bench_tcp,
    bench_abr,
    bench_store
);
criterion_main!(benches);
