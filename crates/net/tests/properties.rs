//! Property-based tests for the TCP substrate: the estimator `f`, the
//! ground-truth connection model, and slow-start-restart window validation.
//!
//! Determinism: the vendored proptest harness (shims/proptest) derives every
//! case's RNG seed from (module path, test name, case index), and all direct
//! `StdRng` uses below seed from literals, so CI runs are fully reproducible
//! with no persisted shrink state.

use proptest::prelude::*;

use veritas_net::{
    apply_slow_start_restart, emission_log_density, estimate_download_time, estimate_throughput,
    LinkModel, TcpConnection, TcpInfo, INITIAL_CWND_SEGMENTS,
};
use veritas_trace::BandwidthTrace;

fn arb_info() -> impl Strategy<Value = TcpInfo> {
    (
        1.0f64..500.0,  // cwnd
        2.0f64..2000.0, // ssthresh
        0.01f64..0.2,   // min_rtt
        0.0f64..20.0,   // last send gap
    )
        .prop_map(|(cwnd, ssthresh, min_rtt, gap)| TcpInfo {
            cwnd_segments: cwnd,
            ssthresh_segments: ssthresh,
            rto_s: (min_rtt * 3.0).max(0.2),
            srtt_s: min_rtt,
            min_rtt_s: min_rtt,
            last_send_gap_s: gap,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn estimator_output_is_finite_nonnegative_and_monotone_in_size_time(
        info in arb_info(),
        capacity in 0.0f64..25.0,
        size_kb in 2.0f64..4000.0,
    ) {
        let size = size_kb * 1000.0;
        let tput = estimate_throughput(capacity, &info, size);
        prop_assert!(tput.is_finite());
        prop_assert!(tput >= 0.0);
        // Download time is non-decreasing in size for the same state.
        let t_small = estimate_download_time(capacity, &info, size);
        let t_large = estimate_download_time(capacity, &info, size * 2.0);
        prop_assert!(t_large >= t_small - 1e-9);
    }

    #[test]
    fn slow_start_restart_never_increases_the_window(info in arb_info()) {
        let decayed = apply_slow_start_restart(&info);
        prop_assert!(decayed.cwnd_segments <= info.cwnd_segments + 1e-9);
        prop_assert!(decayed.cwnd_segments >= INITIAL_CWND_SEGMENTS - 1e-9
            || decayed.cwnd_segments >= info.cwnd_segments - 1e-9);
        prop_assert!(decayed.ssthresh_segments >= info.ssthresh_segments.min(0.75 * info.cwnd_segments) - 1e-9);
        // Idempotent for busy connections.
        if !info.idle_exceeds_rto() {
            prop_assert_eq!(decayed, info);
        }
    }

    #[test]
    fn emission_density_is_maximized_near_the_consistent_capacity(
        info in arb_info(),
        capacity in 1.0f64..10.0,
    ) {
        // Generate the observation from the estimator itself: then the true
        // capacity must be at least as likely as any grid capacity far away.
        let size = 2_000_000.0;
        let observed = estimate_throughput(capacity, &info, size);
        let at_truth = emission_log_density(observed, capacity, &info, size, 0.5);
        let far_low = emission_log_density(observed, (capacity - 3.0).max(0.0), &info, size, 0.5);
        prop_assert!(at_truth >= far_low - 1e-9);
    }

    #[test]
    fn back_to_back_downloads_respect_physics_and_keep_a_warm_window(
        capacity in 0.5f64..20.0,
        size_kb in 10.0f64..3000.0,
    ) {
        let mut conn = TcpConnection::new(LinkModel::paper_default());
        let size = size_kb * 1000.0;
        let first = conn.download_constant(size, 0.0, capacity);
        // A back-to-back request sees no idle decay, so it starts from a
        // window at least as large as the initial one, and both transfers
        // respect the physical floor (one RTT) and ceiling (link capacity).
        let second = conn.download_constant(size, first.duration_s, capacity);
        prop_assert!(second.tcp_info_at_start.cwnd_segments >= INITIAL_CWND_SEGMENTS - 1e-9);
        prop_assert!(second.tcp_info_at_start.last_send_gap_s < second.tcp_info_at_start.rto_s);
        for r in [first, second] {
            prop_assert!(r.duration_s >= 0.08 - 1e-12);
            prop_assert!(r.throughput_mbps <= capacity * 1.05 + 1e-9);
        }
    }

    #[test]
    fn estimator_tracks_the_connection_model_for_steady_large_transfers(
        capacity in 1.0f64..10.0,
    ) {
        // Warm connection, very large transfer: both models should land near
        // the intrinsic capacity.
        let mut conn = TcpConnection::new(LinkModel::paper_default());
        let _ = conn.download_constant(6_000_000.0, 0.0, capacity);
        let start = 20.0;
        let info = conn.info_at(start);
        let predicted = estimate_throughput(capacity, &info, 8_000_000.0);
        let trace = BandwidthTrace::constant(capacity, 10_000.0);
        let actual = conn.download(8_000_000.0, start, &trace).throughput_mbps;
        prop_assert!((predicted - actual).abs() < 0.25 * capacity + 0.3,
            "predicted {} vs simulated {} at capacity {}", predicted, actual, capacity);
    }

    #[test]
    fn tcp_info_snapshots_from_the_connection_are_valid(
        capacity in 0.5f64..20.0,
        gap in 0.0f64..30.0,
    ) {
        let mut conn = TcpConnection::new(LinkModel::paper_default());
        let first = conn.download_constant(500_000.0, 0.0, capacity);
        let second = conn.download_constant(500_000.0, first.duration_s + gap, capacity);
        prop_assert!(second.tcp_info_at_start.is_valid());
        prop_assert!((second.tcp_info_at_start.last_send_gap_s - gap).abs() < 1e-6);
    }
}
