//! The Veritas throughput estimator `f` (paper Algorithm 4) and the Gaussian
//! emission density built on top of it (paper Equation 3).
//!
//! `f` answers: *if the intrinsic network bandwidth (GTBW) were `c`, what
//! throughput would a chunk of size `S` observe, given the TCP state `W` at
//! the start of its download?* The EHMM uses this to score candidate hidden
//! states against the observed throughput, which is what lets Veritas invert
//! observations into the latent bandwidth process.
//!
//! One deviation from the paper's pseudo-code: Algorithm 4 writes the idle
//! decay step as `cwnd <- cwnd << 2`, which would *grow* the window during
//! idle periods. RFC 2861 (and the Linux implementation the paper says it
//! follows) halves the window once per RTO of idle time, so this
//! implementation uses `cwnd <- cwnd >> 1`, floored at the initial window.

use crate::{LinkModel, TcpInfo, INITIAL_CWND_SEGMENTS, MSS_BYTES};

/// Applies slow-start-restart window validation to a *copy* of the TCP state:
/// ssthresh remembers 3/4 of the pre-decay window, and cwnd halves once per
/// RTO of idle time, never dropping below the initial window.
pub fn apply_slow_start_restart(info: &TcpInfo) -> TcpInfo {
    let mut w = *info;
    if !w.idle_exceeds_rto() || w.cwnd_segments <= INITIAL_CWND_SEGMENTS {
        return w;
    }
    w.ssthresh_segments = w.ssthresh_segments.max(0.75 * w.cwnd_segments);
    if !w.last_send_gap_s.is_finite() {
        w.cwnd_segments = INITIAL_CWND_SEGMENTS;
        return w;
    }
    let mut remaining = w.last_send_gap_s;
    while remaining > w.rto_s && w.cwnd_segments > INITIAL_CWND_SEGMENTS {
        w.cwnd_segments = (w.cwnd_segments / 2.0).max(INITIAL_CWND_SEGMENTS);
        remaining -= w.rto_s;
    }
    w
}

/// Estimates the throughput (Mbps) a download of `size_bytes` would observe
/// if the intrinsic network bandwidth were `gtbw_mbps`, given the TCP state
/// `info` at the start of the download. This is the paper's `f(c, W, S)`.
pub fn estimate_throughput(gtbw_mbps: f64, info: &TcpInfo, size_bytes: f64) -> f64 {
    assert!(size_bytes > 0.0 && size_bytes.is_finite());
    assert!(gtbw_mbps >= 0.0 && gtbw_mbps.is_finite());
    let mut w = apply_slow_start_restart(info);

    let data_segments = (size_bytes / MSS_BYTES).ceil().max(1.0);
    let bdp_segments = (gtbw_mbps * 1e6 / 8.0 * w.min_rtt_s / MSS_BYTES).ceil();

    if w.cwnd_segments > bdp_segments {
        if data_segments > bdp_segments {
            // The pipe is already full: the transfer is capacity-bound.
            return gtbw_mbps;
        }
        // Everything fits in one window and one round trip.
        return (size_bytes * 8.0 / 1e6 / w.min_rtt_s).min_non_degenerate(
            gtbw_mbps,
            data_segments,
            bdp_segments,
        );
    }

    // Window-bound: count transmission rounds until the chunk is delivered.
    let mut rounds = 0u32;
    let mut sent = 0.0_f64;
    while sent < data_segments {
        sent += w.cwnd_segments.min(bdp_segments).max(1.0);
        if w.cwnd_segments < w.ssthresh_segments {
            w.cwnd_segments *= 2.0;
        } else {
            w.cwnd_segments += 1.0;
        }
        rounds += 1;
    }
    let throughput = size_bytes * 8.0 / 1e6 / (rounds as f64 * w.min_rtt_s);
    throughput.min(gtbw_mbps)
}

/// Helper trait so the single-round branch reads clearly; for small transfers
/// (`data <= bdp`) the paper returns `S / min_rtt` *uncapped* by the
/// capacity, because a sub-BDP burst genuinely can exceed the average rate.
/// We still guard against the degenerate zero-capacity case.
trait MinNonDegenerate {
    fn min_non_degenerate(self, gtbw_mbps: f64, data_segments: f64, bdp_segments: f64) -> f64;
}

impl MinNonDegenerate for f64 {
    fn min_non_degenerate(self, gtbw_mbps: f64, _data_segments: f64, bdp_segments: f64) -> f64 {
        if bdp_segments <= 0.0 {
            gtbw_mbps
        } else {
            self
        }
    }
}

/// Estimates the download *time* (seconds) implied by [`estimate_throughput`].
///
/// Returns `f64::INFINITY` when the estimated throughput is zero (e.g. a
/// zero-capacity hypothesis for a capacity-bound transfer).
pub fn estimate_download_time(gtbw_mbps: f64, info: &TcpInfo, size_bytes: f64) -> f64 {
    let throughput = estimate_throughput(gtbw_mbps, info, size_bytes);
    if throughput <= 0.0 {
        f64::INFINITY
    } else {
        size_bytes * 8.0 / 1e6 / throughput
    }
}

/// Log-density of the paper's emission model (Equation 3): the observed
/// throughput is Gaussian around `f(c, W, S)` with standard deviation
/// `sigma_mbps`.
pub fn emission_log_density(
    observed_throughput_mbps: f64,
    gtbw_mbps: f64,
    info: &TcpInfo,
    size_bytes: f64,
    sigma_mbps: f64,
) -> f64 {
    assert!(sigma_mbps > 0.0);
    let predicted = estimate_throughput(gtbw_mbps, info, size_bytes);
    gaussian_log_pdf(observed_throughput_mbps, predicted, sigma_mbps)
}

/// Log-density of a normal distribution.
pub fn gaussian_log_pdf(x: f64, mean: f64, std: f64) -> f64 {
    let z = (x - mean) / std;
    -0.5 * z * z - std.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
}

/// Convenience wrapper bundling the link parameters with the estimator, for
/// callers that want BDP-aware helpers alongside `f`.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputEstimator {
    /// Emission noise standard deviation in Mbps (paper default: 0.5).
    pub sigma_mbps: f64,
    /// Link parameters used for BDP bookkeeping.
    pub link: LinkModel,
}

impl ThroughputEstimator {
    /// Creates an estimator with the paper's default σ = 0.5 Mbps.
    pub fn new(link: LinkModel) -> Self {
        Self {
            sigma_mbps: 0.5,
            link,
        }
    }

    /// Overrides the emission noise.
    pub fn with_sigma(mut self, sigma_mbps: f64) -> Self {
        assert!(sigma_mbps > 0.0);
        self.sigma_mbps = sigma_mbps;
        self
    }

    /// Predicted throughput for a candidate capacity.
    pub fn predict(&self, gtbw_mbps: f64, info: &TcpInfo, size_bytes: f64) -> f64 {
        estimate_throughput(gtbw_mbps, info, size_bytes)
    }

    /// Emission log-density for a candidate capacity.
    pub fn log_density(
        &self,
        observed_throughput_mbps: f64,
        gtbw_mbps: f64,
        info: &TcpInfo,
        size_bytes: f64,
    ) -> f64 {
        emission_log_density(
            observed_throughput_mbps,
            gtbw_mbps,
            info,
            size_bytes,
            self.sigma_mbps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steady_info() -> TcpInfo {
        // A connection in steady state with a large window and no idle gap.
        TcpInfo {
            cwnd_segments: 200.0,
            ssthresh_segments: 100.0,
            rto_s: 0.3,
            srtt_s: 0.08,
            min_rtt_s: 0.08,
            last_send_gap_s: 0.01,
        }
    }

    fn cold_info() -> TcpInfo {
        TcpInfo {
            cwnd_segments: 10.0,
            ssthresh_segments: 1000.0,
            rto_s: 0.3,
            srtt_s: 0.08,
            min_rtt_s: 0.08,
            last_send_gap_s: 10.0,
        }
    }

    #[test]
    fn steady_state_large_chunk_sees_full_capacity() {
        let est = estimate_throughput(6.0, &steady_info(), 4_000_000.0);
        assert_eq!(est, 6.0);
    }

    #[test]
    fn tiny_chunk_on_warm_connection_is_latency_bound() {
        // 4 KB in one RTT of 80 ms = 0.4 Mbps regardless of an 18 Mbps link.
        let est = estimate_throughput(18.0, &steady_info(), 4_000.0);
        assert!((est - 0.4).abs() < 1e-9, "got {est}");
    }

    #[test]
    fn cold_connection_medium_chunk_is_window_bound() {
        // 300 KB = 200 segments starting from cwnd=10 in slow start takes
        // multiple rounds, so throughput is well under the link capacity.
        let est = estimate_throughput(18.0, &cold_info(), 300_000.0);
        assert!(est < 18.0);
        assert!(est > 0.0);
    }

    #[test]
    fn estimate_is_monotone_in_capacity_for_large_chunks() {
        let mut prev = 0.0;
        for &c in &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let est = estimate_throughput(c, &steady_info(), 4_000_000.0);
            assert!(est >= prev - 1e-12, "capacity {c} broke monotonicity");
            prev = est;
        }
    }

    #[test]
    fn estimate_never_exceeds_capacity_for_multi_round_transfers() {
        for &c in &[0.5, 2.0, 5.0, 10.0] {
            for &s in &[100_000.0, 500_000.0, 2_000_000.0] {
                let est = estimate_throughput(c, &cold_info(), s);
                assert!(est <= c + 1e-12, "capacity {c}, size {s}: got {est}");
            }
        }
    }

    #[test]
    fn zero_capacity_predicts_zero_throughput_for_large_chunks() {
        assert_eq!(estimate_throughput(0.0, &steady_info(), 1_000_000.0), 0.0);
        assert_eq!(
            estimate_download_time(0.0, &steady_info(), 1_000_000.0),
            f64::INFINITY
        );
    }

    #[test]
    fn slow_start_restart_decays_idle_windows() {
        let mut info = steady_info();
        info.last_send_gap_s = 5.0; // many RTOs idle
        let decayed = apply_slow_start_restart(&info);
        assert!(decayed.cwnd_segments < info.cwnd_segments);
        assert!(decayed.cwnd_segments >= INITIAL_CWND_SEGMENTS);
        assert!(decayed.ssthresh_segments >= 0.75 * info.cwnd_segments);
    }

    #[test]
    fn slow_start_restart_is_a_noop_for_busy_connections() {
        let info = steady_info();
        assert_eq!(apply_slow_start_restart(&info), info);
    }

    #[test]
    fn infinite_idle_gap_resets_to_initial_window() {
        let mut info = steady_info();
        info.last_send_gap_s = f64::INFINITY;
        let decayed = apply_slow_start_restart(&info);
        assert_eq!(decayed.cwnd_segments, INITIAL_CWND_SEGMENTS);
    }

    #[test]
    fn idle_gap_matters_for_medium_chunks() {
        // The same chunk size observed on a warm vs long-idle connection
        // should produce different estimates — the Figure 2(c) effect.
        let warm = estimate_throughput(18.0, &steady_info(), 300_000.0);
        let mut idle = steady_info();
        idle.last_send_gap_s = 8.0;
        let cold = estimate_throughput(18.0, &idle, 300_000.0);
        assert!(
            cold < warm,
            "idle restart must reduce throughput ({cold} vs {warm})"
        );
    }

    #[test]
    fn download_time_is_consistent_with_throughput() {
        let info = cold_info();
        let tput = estimate_throughput(6.0, &info, 1_000_000.0);
        let time = estimate_download_time(6.0, &info, 1_000_000.0);
        assert!((time - 1_000_000.0 * 8.0 / 1e6 / tput).abs() < 1e-12);
    }

    #[test]
    fn gaussian_log_pdf_peaks_at_mean() {
        let at_mean = gaussian_log_pdf(3.0, 3.0, 0.5);
        let off_mean = gaussian_log_pdf(4.0, 3.0, 0.5);
        assert!(at_mean > off_mean);
        // Integral sanity: density at mean for σ=0.5 is 1/(0.5*sqrt(2π)).
        let expected = (1.0 / (0.5 * (2.0 * std::f64::consts::PI).sqrt())).ln();
        assert!((at_mean - expected).abs() < 1e-12);
    }

    #[test]
    fn emission_density_prefers_capacities_matching_observation() {
        let info = steady_info();
        let size = 4_000_000.0;
        let observed = 5.0;
        let good = emission_log_density(observed, 5.0, &info, size, 0.5);
        let bad_low = emission_log_density(observed, 1.0, &info, size, 0.5);
        let bad_high = emission_log_density(observed, 9.0, &info, size, 0.5);
        assert!(good > bad_low);
        assert!(good > bad_high);
    }

    #[test]
    fn small_chunk_emission_is_ambiguous_across_high_capacities() {
        // For a chunk far below the BDP, many capacities predict the same
        // latency-bound throughput, so their densities should be (nearly)
        // identical — the source of Veritas's uncertainty in Figure 7(b).
        let info = steady_info();
        let size = 20_000.0;
        let observed = estimate_throughput(6.0, &info, size);
        let d6 = emission_log_density(observed, 6.0, &info, size, 0.5);
        let d9 = emission_log_density(observed, 9.0, &info, size, 0.5);
        assert!((d6 - d9).abs() < 1e-9);
    }

    #[test]
    fn estimator_wrapper_delegates() {
        let est = ThroughputEstimator::new(LinkModel::paper_default()).with_sigma(0.7);
        assert_eq!(est.sigma_mbps, 0.7);
        let info = steady_info();
        assert_eq!(
            est.predict(6.0, &info, 4_000_000.0),
            estimate_throughput(6.0, &info, 4_000_000.0)
        );
        assert_eq!(
            est.log_density(5.0, 6.0, &info, 4_000_000.0),
            emission_log_density(5.0, 6.0, &info, 4_000_000.0, 0.7)
        );
    }
}
