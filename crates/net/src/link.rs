//! Link parameters for the emulated bottleneck.

use serde::{Deserialize, Serialize};

/// Static parameters of the emulated access link.
///
/// Mirrors the paper's mahimahi setup: a single bottleneck with a fixed
/// propagation delay, a drop-tail queue, and a time-varying rate supplied by
/// the GTBW trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// One-way propagation delay in seconds. The paper's default end-to-end
    /// (round-trip) delay is 80 ms, i.e. 40 ms one way.
    pub one_way_delay_s: f64,
    /// Maximum segment size in bytes.
    pub mss_bytes: f64,
    /// Drop-tail queue capacity in segments. mahimahi's default of one BDP
    /// worth of buffering at a few Mbps is on the order of tens of packets.
    pub queue_segments: f64,
}

impl LinkModel {
    /// A link with the given round-trip propagation delay (seconds).
    pub fn with_rtt(rtt_s: f64) -> Self {
        assert!(rtt_s > 0.0 && rtt_s.is_finite());
        Self {
            one_way_delay_s: rtt_s / 2.0,
            mss_bytes: crate::MSS_BYTES,
            queue_segments: 60.0,
        }
    }

    /// The paper's default evaluation link: 80 ms end-to-end RTT.
    pub fn paper_default() -> Self {
        Self::with_rtt(0.08)
    }

    /// Round-trip propagation delay in seconds.
    pub fn base_rtt_s(&self) -> f64 {
        2.0 * self.one_way_delay_s
    }

    /// Bandwidth-delay product in segments at `bandwidth_mbps`.
    pub fn bdp_segments(&self, bandwidth_mbps: f64) -> f64 {
        (bandwidth_mbps.max(0.0) * 1e6 / 8.0) * self.base_rtt_s() / self.mss_bytes
    }

    /// Bandwidth-delay product in bytes at `bandwidth_mbps`.
    pub fn bdp_bytes(&self, bandwidth_mbps: f64) -> f64 {
        self.bdp_segments(bandwidth_mbps) * self.mss_bytes
    }

    /// Overrides the queue capacity (segments).
    pub fn with_queue(mut self, queue_segments: f64) -> Self {
        assert!(queue_segments >= 0.0);
        self.queue_segments = queue_segments;
        self
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_80ms_rtt() {
        let link = LinkModel::paper_default();
        assert!((link.base_rtt_s() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn bdp_scales_linearly_with_bandwidth() {
        let link = LinkModel::with_rtt(0.08);
        let b1 = link.bdp_segments(5.0);
        let b2 = link.bdp_segments(10.0);
        assert!((b2 / b1 - 2.0).abs() < 1e-9);
        // 10 Mbps * 80 ms = 100 KB = ~66.7 segments of 1500 B.
        assert!((link.bdp_bytes(10.0) - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn bdp_of_zero_bandwidth_is_zero() {
        let link = LinkModel::default();
        assert_eq!(link.bdp_segments(0.0), 0.0);
        assert_eq!(link.bdp_segments(-5.0), 0.0);
    }

    #[test]
    fn queue_override() {
        let link = LinkModel::default().with_queue(100.0);
        assert_eq!(link.queue_segments, 100.0);
    }
}
