//! Round-level TCP connection model used as the emulation ground truth.
//!
//! This is the substrate standing in for "mahimahi + the Linux TCP stack" in
//! the paper's testbed (see `DESIGN.md`). It is deliberately richer than the
//! Veritas throughput estimator `f` in [`crate::estimator`]: it tracks the
//! connection across chunk downloads, reacts to the *time-varying* GTBW
//! during a download, models drop-tail queue overflow with multiplicative
//! decrease, and applies RFC 2861 congestion-window validation during idle
//! periods. That gap between the ground-truth model and `f` is what gives
//! the estimator the realistic error distribution reproduced in Figure 5.

use serde::{Deserialize, Serialize};

use veritas_trace::BandwidthTrace;

use crate::{default_rto, LinkModel, TcpInfo, INITIAL_CWND_SEGMENTS, INITIAL_SSTHRESH_SEGMENTS};

/// Hard cap on simulation rounds per download, to bound runtime even on
/// pathological inputs (e.g. a trace that is zero for its entire duration).
const MAX_ROUNDS: usize = 200_000;

/// Time step used to skip ahead when the link bandwidth is zero.
const STALL_STEP_S: f64 = 0.1;

/// Outcome of simulating one object download.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DownloadResult {
    /// Wall-clock download duration in seconds.
    pub duration_s: f64,
    /// Observed application-level throughput in Mbps (`size / duration`).
    pub throughput_mbps: f64,
    /// Number of RTT-scale transmission rounds the download took.
    pub rounds: usize,
    /// Number of loss (queue-overflow) events during the download.
    pub losses: usize,
    /// TCP state snapshot taken at the *start* of the download, after any
    /// idle-period window validation was applied — the `W_{s_n}` the
    /// application would read from `tcp_info` when issuing the request.
    pub tcp_info_at_start: TcpInfo,
}

/// A persistent TCP connection carrying successive chunk downloads.
///
/// The connection keeps congestion state between downloads, which is exactly
/// the mechanism that couples consecutive chunks in a video session and makes
/// the observed throughput depend on chunk size and request spacing
/// (paper Figure 2(c)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcpConnection {
    link: LinkModel,
    cwnd_segments: f64,
    ssthresh_segments: f64,
    /// Absolute time the connection last transmitted data, or `None` if it
    /// has never sent.
    last_send_time_s: Option<f64>,
    total_losses: usize,
    total_rounds: usize,
}

impl TcpConnection {
    /// Opens a new connection over `link`.
    pub fn new(link: LinkModel) -> Self {
        Self {
            link,
            cwnd_segments: INITIAL_CWND_SEGMENTS,
            ssthresh_segments: INITIAL_SSTHRESH_SEGMENTS,
            last_send_time_s: None,
            total_losses: 0,
            total_rounds: 0,
        }
    }

    /// The link this connection runs over.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Cumulative loss events since the connection was opened.
    pub fn total_losses(&self) -> usize {
        self.total_losses
    }

    /// Cumulative transmission rounds since the connection was opened.
    pub fn total_rounds(&self) -> usize {
        self.total_rounds
    }

    /// Current congestion window in segments.
    pub fn cwnd_segments(&self) -> f64 {
        self.cwnd_segments
    }

    /// Current slow-start threshold in segments.
    pub fn ssthresh_segments(&self) -> f64 {
        self.ssthresh_segments
    }

    /// Snapshot of the connection state as it would be observed at absolute
    /// time `now_s`, *without* applying idle-window validation (i.e. the raw
    /// `tcp_info` read).
    pub fn info_at(&self, now_s: f64) -> TcpInfo {
        let srtt = self.link.base_rtt_s();
        TcpInfo {
            cwnd_segments: self.cwnd_segments,
            ssthresh_segments: self.ssthresh_segments,
            rto_s: default_rto(srtt),
            srtt_s: srtt,
            min_rtt_s: self.link.base_rtt_s(),
            last_send_gap_s: match self.last_send_time_s {
                Some(t) => (now_s - t).max(0.0),
                None => f64::INFINITY,
            },
        }
    }

    /// Applies RFC 2861 congestion-window validation for an idle period of
    /// `idle_s` seconds: ssthresh is raised to remember the old window
    /// (`max(ssthresh, 3/4 cwnd)`) and cwnd is halved once per RTO elapsed,
    /// never dropping below the initial window.
    fn apply_idle_decay(&mut self, idle_s: f64) {
        let rto = default_rto(self.link.base_rtt_s());
        if !idle_s.is_finite() {
            // Never sent before: keep the initial window.
            self.cwnd_segments = INITIAL_CWND_SEGMENTS;
            return;
        }
        if idle_s <= rto || self.cwnd_segments <= INITIAL_CWND_SEGMENTS {
            return;
        }
        self.ssthresh_segments = self
            .ssthresh_segments
            .max(0.75 * self.cwnd_segments)
            .min(INITIAL_SSTHRESH_SEGMENTS);
        let mut remaining = idle_s;
        while remaining > rto && self.cwnd_segments > INITIAL_CWND_SEGMENTS {
            self.cwnd_segments = (self.cwnd_segments / 2.0).max(INITIAL_CWND_SEGMENTS);
            remaining -= rto;
        }
    }

    /// Simulates downloading `size_bytes` starting at absolute time
    /// `start_time_s`, with the bottleneck rate given by `trace`.
    ///
    /// Returns the download outcome and advances the connection state. The
    /// TCP snapshot embedded in the result reflects the state *after* idle
    /// decay but *before* any segment of this download is transmitted —
    /// matching what an application reading `tcp_info` at request time sees.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is not strictly positive or `start_time_s` is
    /// negative/not finite.
    pub fn download(
        &mut self,
        size_bytes: f64,
        start_time_s: f64,
        trace: &BandwidthTrace,
    ) -> DownloadResult {
        assert!(
            size_bytes > 0.0 && size_bytes.is_finite(),
            "size must be positive"
        );
        assert!(start_time_s >= 0.0 && start_time_s.is_finite());

        // Idle-period window validation before the request goes out.
        let idle_s = match self.last_send_time_s {
            Some(t) => (start_time_s - t).max(0.0),
            None => f64::INFINITY,
        };
        self.apply_idle_decay(idle_s);

        let info_at_start = {
            let mut info = self.info_at(start_time_s);
            info.last_send_gap_s = idle_s;
            info
        };

        let mss = self.link.mss_bytes;
        let base_rtt = self.link.base_rtt_s();
        let total_segments = (size_bytes / mss).ceil().max(1.0);

        // The HTTP request/response handshake costs one RTT before payload
        // bytes start arriving (request up + first byte down).
        let mut now = start_time_s + base_rtt;
        let mut delivered = 0.0_f64;
        let mut rounds = 0usize;
        let mut losses = 0usize;

        while delivered < total_segments && rounds < MAX_ROUNDS {
            let bw = trace.bandwidth_at(now);
            if bw <= 1e-9 {
                // Link is stalled; wait for capacity to come back.
                now += STALL_STEP_S;
                rounds += 1;
                continue;
            }
            let bdp = self.link.bdp_segments(bw);
            let capacity_this_round = bdp + self.link.queue_segments;
            let want = self.cwnd_segments.min(total_segments - delivered);

            let (sent, lost) = if want > capacity_this_round {
                // Drop-tail overflow: only what fits is delivered, and the
                // sender reacts with multiplicative decrease.
                (capacity_this_round, true)
            } else {
                (want, false)
            };

            delivered += sent;

            // Round duration: one RTT, plus the extra serialization delay of
            // anything sent beyond one BDP (those segments sit in the queue).
            let queued = (sent - bdp).max(0.0);
            let queue_delay = queued * mss * 8.0 / (bw * 1e6);
            now += base_rtt + queue_delay;
            rounds += 1;

            if lost {
                losses += 1;
                self.ssthresh_segments = (self.cwnd_segments / 2.0).max(2.0);
                self.cwnd_segments = self.ssthresh_segments;
            } else if self.cwnd_segments < self.ssthresh_segments {
                // Slow start: double per round, capped at ssthresh.
                self.cwnd_segments =
                    (self.cwnd_segments * 2.0).min(self.ssthresh_segments.max(2.0));
            } else {
                // Congestion avoidance: one segment per round.
                self.cwnd_segments += 1.0;
            }
        }

        let duration = (now - start_time_s).max(base_rtt);
        self.last_send_time_s = Some(now);
        self.total_losses += losses;
        self.total_rounds += rounds;

        DownloadResult {
            duration_s: duration,
            throughput_mbps: size_bytes * 8.0 / 1e6 / duration,
            rounds,
            losses,
            tcp_info_at_start: info_at_start,
        }
    }

    /// Convenience: downloads against a constant-bandwidth link.
    pub fn download_constant(
        &mut self,
        size_bytes: f64,
        start_time_s: f64,
        bandwidth_mbps: f64,
    ) -> DownloadResult {
        let trace = BandwidthTrace::constant(bandwidth_mbps, start_time_s + 3600.0);
        self.download(size_bytes, start_time_s, &trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn() -> TcpConnection {
        TcpConnection::new(LinkModel::paper_default())
    }

    #[test]
    fn large_download_approaches_link_rate() {
        let mut c = conn();
        // Warm the connection up first so cwnd has grown past the BDP.
        let _ = c.download_constant(4_000_000.0, 0.0, 10.0);
        let r = c.download_constant(8_000_000.0, 10.0, 10.0);
        assert!(
            r.throughput_mbps > 7.0 && r.throughput_mbps <= 10.0 + 1e-9,
            "throughput {} should be near the 10 Mbps link rate",
            r.throughput_mbps
        );
    }

    #[test]
    fn small_download_sees_much_lower_throughput() {
        let mut c = conn();
        let r = c.download_constant(4_000.0, 0.0, 18.0);
        // 4 KB over >=1 RTT of 80 ms is at most ~0.4 Mbps.
        assert!(
            r.throughput_mbps < 1.0,
            "small objects are latency-bound, got {} Mbps",
            r.throughput_mbps
        );
    }

    #[test]
    fn throughput_never_exceeds_capacity_materially() {
        for &size in &[2e3, 2e4, 2e5, 2e6, 4e6] {
            for &bw in &[0.5, 2.0, 6.0, 18.0] {
                let mut c = conn();
                let r = c.download_constant(size, 0.0, bw);
                assert!(
                    r.throughput_mbps <= bw * 1.05 + 1e-9,
                    "size {size} bw {bw}: got {}",
                    r.throughput_mbps
                );
            }
        }
    }

    #[test]
    fn duration_is_at_least_one_rtt() {
        let mut c = conn();
        let r = c.download_constant(1_000.0, 0.0, 100.0);
        assert!(r.duration_s >= 0.08);
    }

    #[test]
    fn larger_chunks_never_download_faster_given_identical_state() {
        for &bw in &[1.0, 4.0, 8.0] {
            let mut prev = 0.0;
            for &size in &[1e4, 1e5, 5e5, 1e6, 4e6] {
                let mut c = conn();
                let r = c.download_constant(size, 0.0, bw);
                assert!(
                    r.duration_s >= prev - 1e-9,
                    "bw {bw}: size {size} downloaded faster than a smaller chunk"
                );
                prev = r.duration_s;
            }
        }
    }

    #[test]
    fn higher_bandwidth_never_slows_a_download() {
        for &size in &[1e5, 1e6, 4e6] {
            let mut prev = f64::INFINITY;
            for &bw in &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
                let mut c = conn();
                let r = c.download_constant(size, 0.0, bw);
                assert!(
                    r.duration_s <= prev + 1e-9,
                    "size {size}: bw {bw} slower than a lower bandwidth"
                );
                prev = r.duration_s;
            }
        }
    }

    #[test]
    fn connection_state_persists_and_grows_across_downloads() {
        let mut c = conn();
        let first = c.download_constant(2_000_000.0, 0.0, 10.0);
        let cwnd_after_first = c.cwnd_segments();
        assert!(cwnd_after_first > INITIAL_CWND_SEGMENTS);
        // Immediately issue another request (no idle gap): it starts from the
        // grown window and finishes faster than the first.
        let second = c.download_constant(2_000_000.0, first.duration_s, 10.0);
        assert!(second.duration_s < first.duration_s);
        assert!(second.tcp_info_at_start.cwnd_segments >= INITIAL_CWND_SEGMENTS);
    }

    #[test]
    fn long_idle_gap_triggers_slow_start_restart() {
        let mut c = conn();
        let first = c.download_constant(4_000_000.0, 0.0, 10.0);
        let grown = c.cwnd_segments();
        assert!(grown > INITIAL_CWND_SEGMENTS);
        // Wait far longer than the RTO before the next request.
        let start = first.duration_s + 30.0;
        let second = c.download_constant(100_000.0, start, 10.0);
        assert!(
            second.tcp_info_at_start.cwnd_segments < grown,
            "idle decay should have shrunk cwnd ({} vs {})",
            second.tcp_info_at_start.cwnd_segments,
            grown
        );
        assert!(second.tcp_info_at_start.last_send_gap_s > 20.0);
    }

    #[test]
    fn short_gap_does_not_trigger_restart() {
        let mut c = conn();
        let first = c.download_constant(4_000_000.0, 0.0, 10.0);
        let grown = c.cwnd_segments();
        let second = c.download_constant(100_000.0, first.duration_s + 0.05, 10.0);
        assert!(
            (second.tcp_info_at_start.cwnd_segments - grown).abs() < 1e-9,
            "a 50 ms gap is below the RTO and must not decay the window"
        );
    }

    #[test]
    fn queue_overflow_causes_losses_on_tiny_links() {
        let mut c = TcpConnection::new(LinkModel::with_rtt(0.08).with_queue(5.0));
        let r = c.download_constant(4_000_000.0, 0.0, 0.5);
        assert!(
            r.losses > 0,
            "a 4 MB chunk over 0.5 Mbps with a 5-packet queue must lose"
        );
    }

    #[test]
    fn zero_bandwidth_portions_stall_but_terminate() {
        // 2 s of dead air then 10 Mbps.
        let trace = veritas_trace::BandwidthTrace::new(vec![
            veritas_trace::TraceSegment {
                interval_s: 2.0,
                bandwidth_mbps: 0.0,
            },
            veritas_trace::TraceSegment {
                interval_s: 600.0,
                bandwidth_mbps: 10.0,
            },
        ])
        .unwrap();
        let mut c = conn();
        let r = c.download(500_000.0, 0.0, &trace);
        assert!(
            r.duration_s > 2.0,
            "download cannot finish while the link is dead"
        );
        assert!(
            r.duration_s < 10.0,
            "download must finish soon after the link recovers"
        );
    }

    #[test]
    fn download_time_reacts_to_mid_download_bandwidth_change() {
        // First half of time at 8 Mbps, then drops to 1 Mbps.
        let trace = veritas_trace::BandwidthTrace::new(vec![
            veritas_trace::TraceSegment {
                interval_s: 1.0,
                bandwidth_mbps: 8.0,
            },
            veritas_trace::TraceSegment {
                interval_s: 600.0,
                bandwidth_mbps: 1.0,
            },
        ])
        .unwrap();
        let mut slow = conn();
        let r_varying = slow.download(4_000_000.0, 0.0, &trace);
        let mut fast = conn();
        let r_fast = fast.download_constant(4_000_000.0, 0.0, 8.0);
        assert!(
            r_varying.duration_s > r_fast.duration_s * 1.5,
            "a mid-download drop to 1 Mbps must slow the transfer substantially"
        );
    }

    #[test]
    fn result_snapshot_is_valid_tcp_info() {
        let mut c = conn();
        let r = c.download_constant(1_000_000.0, 5.0, 6.0);
        assert!(
            r.tcp_info_at_start.is_valid() || r.tcp_info_at_start.last_send_gap_s.is_infinite()
        );
        let r2 = c.download_constant(1_000_000.0, 20.0, 6.0);
        assert!(r2.tcp_info_at_start.is_valid());
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn rejects_zero_size() {
        let mut c = conn();
        let _ = c.download_constant(0.0, 0.0, 5.0);
    }
}
