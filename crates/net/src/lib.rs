//! TCP substrate for the Veritas reproduction.
//!
//! Two models of TCP live here, and the difference between them is the point:
//!
//! * [`TcpConnection`] — the *ground-truth* round-level model used by the
//!   emulation testbed (standing in for mahimahi + the Linux stack). It
//!   tracks congestion state across chunk downloads, reacts to time-varying
//!   bandwidth mid-download, models queue overflow losses and RFC 2861 idle
//!   window validation.
//! * [`estimate_throughput`] — the paper's estimator `f` (Algorithm 4): a
//!   deliberately simple, constant-capacity, loss-free model used *inside*
//!   the EHMM emission process to test whether a candidate GTBW value is
//!   consistent with an observed chunk throughput.
//!
//! [`TcpInfo`] is the snapshot of control variables (`W_{s_n}`) the paper
//! conditions on, and [`LinkModel`] holds the static link parameters.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod connection;
mod estimator;
mod link;
mod tcp_info;

pub use connection::{DownloadResult, TcpConnection};
pub use estimator::{
    apply_slow_start_restart, emission_log_density, estimate_download_time, estimate_throughput,
    gaussian_log_pdf, ThroughputEstimator,
};
pub use link::LinkModel;
pub use tcp_info::{default_rto, TcpInfo};

/// Maximum segment size in bytes (one Ethernet MTU of payload).
pub const MSS_BYTES: f64 = 1500.0;

/// Initial congestion window in segments (Linux default, RFC 6928).
pub const INITIAL_CWND_SEGMENTS: f64 = 10.0;

/// Initial slow-start threshold in segments (effectively unbounded).
pub const INITIAL_SSTHRESH_SEGMENTS: f64 = 1_000_000.0;
