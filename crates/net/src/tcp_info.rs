//! The TCP control variables Veritas conditions on (`W_{s_n}` in the paper).

use serde::{Deserialize, Serialize};

/// Snapshot of TCP connection state at the start of a chunk download.
///
/// These are the control variables the paper reads from Linux's `tcp_info`
/// / `ss` output: congestion window, slow-start threshold, retransmission
/// timeout, smoothed RTT, minimum RTT, and the time since the connection
/// last sent data. Conditioning the EHMM on this snapshot is what lets the
/// observed chunk throughput be "inverted" back into the latent GTBW.
///
/// Window sizes are expressed in MSS-sized segments, times in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpInfo {
    /// Congestion window in segments.
    pub cwnd_segments: f64,
    /// Slow-start threshold in segments.
    pub ssthresh_segments: f64,
    /// Retransmission timeout in seconds.
    pub rto_s: f64,
    /// Smoothed round-trip time in seconds.
    pub srtt_s: f64,
    /// Minimum observed round-trip time in seconds.
    pub min_rtt_s: f64,
    /// Time since the connection last transmitted data, in seconds.
    ///
    /// This is the `last_send` gap that decides whether slow-start restart
    /// (RFC 2861) has kicked in by the time the next chunk request arrives.
    /// A connection that has never sent reports `f64::INFINITY`; the field
    /// round-trips through JSON via a negative sentinel because JSON has no
    /// infinity literal.
    #[serde(with = "send_gap_serde")]
    pub last_send_gap_s: f64,
}

/// JSON-safe encoding for the send gap: non-finite gaps (a connection that
/// has never sent) are stored as `-1.0` and restored to `f64::INFINITY`.
mod send_gap_serde {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(value: &f64, serializer: S) -> Result<S::Ok, S::Error> {
        if value.is_finite() {
            serializer.serialize_f64(*value)
        } else {
            serializer.serialize_f64(-1.0)
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<f64, D::Error> {
        let raw = f64::deserialize(deserializer)?;
        if raw < 0.0 {
            Ok(f64::INFINITY)
        } else {
            Ok(raw)
        }
    }
}

impl TcpInfo {
    /// A fresh connection snapshot: initial window, effectively-infinite
    /// ssthresh, and no prior send.
    pub fn fresh(min_rtt_s: f64) -> Self {
        assert!(min_rtt_s > 0.0 && min_rtt_s.is_finite());
        Self {
            cwnd_segments: crate::INITIAL_CWND_SEGMENTS,
            ssthresh_segments: crate::INITIAL_SSTHRESH_SEGMENTS,
            rto_s: default_rto(min_rtt_s),
            srtt_s: min_rtt_s,
            min_rtt_s,
            last_send_gap_s: f64::INFINITY,
        }
    }

    /// Whether the idle gap exceeds the RTO, i.e. whether slow-start restart
    /// applies to the next transmission.
    pub fn idle_exceeds_rto(&self) -> bool {
        self.last_send_gap_s > self.rto_s
    }

    /// Validates that all fields are finite (except the send gap, which may
    /// legitimately be infinite for a fresh connection) and positive where
    /// required. Returns `false` for malformed snapshots.
    pub fn is_valid(&self) -> bool {
        self.cwnd_segments.is_finite()
            && self.cwnd_segments >= 1.0
            && self.ssthresh_segments.is_finite()
            && self.ssthresh_segments >= 1.0
            && self.rto_s.is_finite()
            && self.rto_s > 0.0
            && self.srtt_s.is_finite()
            && self.srtt_s > 0.0
            && self.min_rtt_s.is_finite()
            && self.min_rtt_s > 0.0
            && self.min_rtt_s <= self.srtt_s + 1e-9
            && self.last_send_gap_s >= 0.0
    }
}

/// Linux-style RTO floor: `max(200 ms, srtt + 4 * rttvar)`, with rttvar
/// approximated as `srtt / 2` for this model.
pub fn default_rto(srtt_s: f64) -> f64 {
    (srtt_s + 4.0 * (srtt_s / 2.0)).max(0.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_snapshot_is_valid() {
        let info = TcpInfo::fresh(0.08);
        assert!(info.is_valid());
        assert_eq!(info.cwnd_segments, crate::INITIAL_CWND_SEGMENTS);
        assert!(
            info.idle_exceeds_rto(),
            "fresh connection has infinite idle gap"
        );
    }

    #[test]
    fn rto_has_200ms_floor() {
        assert_eq!(default_rto(0.001), 0.2);
        assert!((default_rto(0.1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn idle_detection_uses_rto() {
        let mut info = TcpInfo::fresh(0.08);
        info.last_send_gap_s = 0.05;
        assert!(!info.idle_exceeds_rto());
        info.last_send_gap_s = 10.0;
        assert!(info.idle_exceeds_rto());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut info = TcpInfo::fresh(0.08);
        info.cwnd_segments = 0.0;
        assert!(!info.is_valid());
        let mut info = TcpInfo::fresh(0.08);
        info.min_rtt_s = 0.2;
        info.srtt_s = 0.1;
        assert!(!info.is_valid());
        let mut info = TcpInfo::fresh(0.08);
        info.rto_s = f64::NAN;
        assert!(!info.is_valid());
    }
}
