//! Fugu-style associational baseline.
//!
//! [`FuguModel`] is a from-scratch reproduction of the download-time
//! predictor the paper compares against ("FuguNN"): an MLP trained on
//! observational session logs to predict the next chunk's download time from
//! the recent history and the candidate size. [`Mlp`] is the small,
//! dependency-free network underneath it.
//!
//! The model is *meant* to be associational: its bias under interventional
//! queries (forcing chunk sizes the deployed ABR would not have chosen) is
//! the phenomenon the paper's Figure 2(b) and Figure 12 demonstrate, and the
//! benchmark harness reproduces with this implementation.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod mlp;
mod model;

pub use mlp::{Mlp, TrainConfig};
pub use model::{build_features, examples_from_log, Example, FuguConfig, FuguModel};
