//! The Fugu-style associational download-time predictor.
//!
//! Fugu (Yan et al., NSDI 2020) trains a neural network to predict the
//! download (transmission) time of the next chunk from the sizes and
//! download times of the previous `K` chunks and the size of the candidate
//! chunk. Trained on logs of a deployed ABR, the model captures the
//! *association* between sizes and download times under that ABR's policy —
//! which is exactly why it is biased when asked the causal question "what if
//! the next chunk were forced to a different size" (paper §2.2, Figure 2(b),
//! Figure 12).

use serde::{Deserialize, Serialize};

use veritas_player::SessionLog;

use crate::mlp::{Mlp, TrainConfig};

/// Model hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuguConfig {
    /// Number of past chunks in the input window.
    pub history: usize,
    /// Hidden layer width (two hidden layers are used).
    pub hidden: usize,
    /// Training parameters for the underlying MLP.
    pub train: TrainConfig,
    /// Seed for weight initialization and data shuffling.
    pub seed: u64,
}

impl Default for FuguConfig {
    fn default() -> Self {
        Self {
            history: 8,
            hidden: 64,
            train: TrainConfig::default(),
            seed: 42,
        }
    }
}

/// Feature scaling constants (fit on the training set).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Scaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Scaler {
    fn fit(rows: &[Vec<f64>]) -> Self {
        let dim = rows[0].len();
        let n = rows.len() as f64;
        let mut mean = vec![0.0; dim];
        for row in rows {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut std = vec![0.0; dim];
        for row in rows {
            for ((s, &v), &m) in std.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in std.iter_mut() {
            *s = (*s / n).sqrt().max(1e-6);
        }
        Self { mean, std }
    }

    fn apply(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((&v, &m), &s)| (v - m) / s)
            .collect()
    }
}

/// A trained Fugu-style transmission-time predictor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuguModel {
    config: FuguConfig,
    scaler: Scaler,
    network: Mlp,
    /// Mean absolute training residual, reported for diagnostics.
    pub training_mae_s: f64,
}

/// One training example: past sizes/times, the candidate size, and the
/// target download time.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Input features in raw (unscaled) units.
    pub features: Vec<f64>,
    /// Target download time in seconds.
    pub target_s: f64,
}

/// Builds the raw feature vector for predicting the download time of a chunk
/// given `history` previous (size, download-time) pairs and the candidate
/// size. Sizes are expressed in megabytes to keep features O(1).
pub fn build_features(
    past_sizes_bytes: &[f64],
    past_download_times_s: &[f64],
    candidate_size_bytes: f64,
    history: usize,
) -> Vec<f64> {
    assert_eq!(past_sizes_bytes.len(), past_download_times_s.len());
    let mut features = Vec::with_capacity(2 * history + 1);
    // Pad on the left with zeros when fewer than `history` chunks exist.
    let have = past_sizes_bytes.len();
    for i in 0..history {
        if i < history - have.min(history) {
            features.push(0.0);
            features.push(0.0);
        } else {
            let idx = have - (history - i);
            features.push(past_sizes_bytes[idx] / 1e6);
            features.push(past_download_times_s[idx]);
        }
    }
    features.push(candidate_size_bytes / 1e6);
    features
}

/// Extracts all training examples from a session log.
pub fn examples_from_log(log: &SessionLog, history: usize) -> Vec<Example> {
    let sizes = log.chunk_sizes();
    let times = log.download_times();
    let mut out = Vec::new();
    for n in 1..sizes.len() {
        let features = build_features(&sizes[..n], &times[..n], sizes[n], history);
        out.push(Example {
            features,
            target_s: times[n],
        });
    }
    out
}

impl FuguModel {
    /// Trains a model on the given session logs.
    ///
    /// # Panics
    ///
    /// Panics if the logs contain no usable training examples.
    pub fn train_on_logs(logs: &[SessionLog], config: FuguConfig) -> Self {
        let mut examples = Vec::new();
        for log in logs {
            examples.extend(examples_from_log(log, config.history));
        }
        assert!(
            !examples.is_empty(),
            "no training examples could be extracted from the session logs"
        );
        let raw_inputs: Vec<Vec<f64>> = examples.iter().map(|e| e.features.clone()).collect();
        let targets: Vec<f64> = examples.iter().map(|e| e.target_s).collect();
        let scaler = Scaler::fit(&raw_inputs);
        let inputs: Vec<Vec<f64>> = raw_inputs.iter().map(|r| scaler.apply(r)).collect();

        let input_dim = inputs[0].len();
        let mut network = Mlp::new(&[input_dim, config.hidden, config.hidden, 1], config.seed);
        network.train(
            &inputs,
            &targets,
            &config.train,
            config.seed.wrapping_add(1),
        );

        let training_mae_s = inputs
            .iter()
            .zip(&targets)
            .map(|(x, &y)| (network.predict(x) - y).abs())
            .sum::<f64>()
            / targets.len() as f64;

        Self {
            config,
            scaler,
            network,
            training_mae_s,
        }
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &FuguConfig {
        &self.config
    }

    /// Predicts the download time (seconds) of a chunk of
    /// `candidate_size_bytes` given the session history so far.
    ///
    /// Predictions are clamped to be non-negative.
    pub fn predict_download_time(
        &self,
        past_sizes_bytes: &[f64],
        past_download_times_s: &[f64],
        candidate_size_bytes: f64,
    ) -> f64 {
        let features = build_features(
            past_sizes_bytes,
            past_download_times_s,
            candidate_size_bytes,
            self.config.history,
        );
        self.network.predict(&self.scaler.apply(&features)).max(0.0)
    }

    /// Predicts download times for every chunk of a logged session (chunk
    /// `n` predicted from the logged history `1..n`), returning
    /// `(predicted, actual)` pairs. Chunk 0 is skipped (no history).
    pub fn predict_over_log(&self, log: &SessionLog) -> Vec<(f64, f64)> {
        let sizes = log.chunk_sizes();
        let times = log.download_times();
        (1..sizes.len())
            .map(|n| {
                let predicted = self.predict_download_time(&sizes[..n], &times[..n], sizes[n]);
                (predicted, times[n])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veritas_abr::Mpc;
    use veritas_media::{QualityLadder, VbrParams, VideoAsset};
    use veritas_player::{run_session, PlayerConfig};
    use veritas_trace::generators::{FccLike, TraceGenerator};

    fn training_logs(count: usize) -> (VideoAsset, Vec<SessionLog>) {
        let asset = VideoAsset::generate(
            QualityLadder::paper_default(),
            240.0,
            2.0,
            VbrParams::default(),
            3,
        );
        let gen = FccLike::new(1.0, 8.0);
        let logs = (0..count)
            .map(|i| {
                let trace = gen.generate(600.0, 100 + i as u64);
                let mut abr = Mpc::new();
                run_session(&asset, &mut abr, &trace, &PlayerConfig::paper_default())
            })
            .collect();
        (asset, logs)
    }

    #[test]
    fn feature_vector_has_fixed_width_and_padding() {
        let f = build_features(&[1e6, 2e6], &[0.5, 1.0], 3e6, 4);
        assert_eq!(f.len(), 9);
        // First two (oldest) slots are zero-padded.
        assert_eq!(&f[..4], &[0.0, 0.0, 0.0, 0.0]);
        assert!((f[4] - 1.0).abs() < 1e-12);
        assert!((f[5] - 0.5).abs() < 1e-12);
        assert!((f[8] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn feature_vector_truncates_long_histories_to_the_most_recent() {
        let sizes: Vec<f64> = (1..=10).map(|i| i as f64 * 1e6).collect();
        let times: Vec<f64> = (1..=10).map(|i| i as f64 * 0.1).collect();
        let f = build_features(&sizes, &times, 5e5, 3);
        assert_eq!(f.len(), 7);
        assert!((f[0] - 8.0).abs() < 1e-12, "oldest retained chunk is #8");
        assert!((f[4] - 10.0).abs() < 1e-12, "newest chunk is #10");
    }

    #[test]
    fn examples_are_extracted_per_chunk() {
        let (_asset, logs) = training_logs(1);
        let examples = examples_from_log(&logs[0], 8);
        assert_eq!(examples.len(), logs[0].records.len() - 1);
        assert!(examples.iter().all(|e| e.features.len() == 17));
        assert!(examples.iter().all(|e| e.target_s > 0.0));
    }

    #[test]
    fn trained_model_fits_in_distribution_download_times() {
        let (_asset, logs) = training_logs(6);
        let config = FuguConfig {
            train: TrainConfig {
                epochs: 40,
                ..TrainConfig::default()
            },
            ..FuguConfig::default()
        };
        let model = FuguModel::train_on_logs(&logs, config);
        // In-distribution accuracy: the associational task Fugu is good at.
        let preds = model.predict_over_log(&logs[0]);
        let mae: f64 = preds.iter().map(|(p, a)| (p - a).abs()).sum::<f64>() / preds.len() as f64;
        assert!(
            mae < 1.0,
            "in-distribution MAE {mae} s is too large (training MAE {})",
            model.training_mae_s
        );
    }

    #[test]
    fn predictions_are_non_negative_and_deterministic() {
        let (_asset, logs) = training_logs(3);
        let config = FuguConfig {
            train: TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            },
            ..FuguConfig::default()
        };
        let model = FuguModel::train_on_logs(&logs, config);
        let p1 = model.predict_download_time(&[5e5, 6e5], &[1.0, 1.2], 2e6);
        let p2 = model.predict_download_time(&[5e5, 6e5], &[1.0, 1.2], 2e6);
        assert_eq!(p1, p2);
        assert!(p1 >= 0.0);
    }

    #[test]
    fn training_is_reproducible_given_the_seed() {
        let (_asset, logs) = training_logs(2);
        let config = FuguConfig {
            train: TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            },
            ..FuguConfig::default()
        };
        let a = FuguModel::train_on_logs(&logs, config);
        let b = FuguModel::train_on_logs(&logs, config);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "no training examples")]
    fn training_requires_examples() {
        let _ = FuguModel::train_on_logs(&[], FuguConfig::default());
    }
}
