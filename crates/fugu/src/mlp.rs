//! A small, dependency-free multi-layer perceptron with Adam training.
//!
//! This is the substrate for the Fugu-style associational baseline: the
//! point of that comparison is the *bias of associational learning*, not a
//! particular deep-learning framework, so a compact dense network with
//! ReLU hidden layers, a linear output, Huber loss and Adam is sufficient
//! (and keeps the workspace free of native ML dependencies).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One dense layer: `y = W x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Dense {
    inputs: usize,
    outputs: usize,
    /// Row-major `outputs × inputs`.
    weights: Vec<f64>,
    biases: Vec<f64>,
    // Adam state.
    m_w: Vec<f64>,
    v_w: Vec<f64>,
    m_b: Vec<f64>,
    v_b: Vec<f64>,
}

impl Dense {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        // Xavier/He-style initialization for ReLU networks.
        let scale = (2.0 / inputs as f64).sqrt();
        let weights = (0..inputs * outputs)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Self {
            inputs,
            outputs,
            weights,
            biases: vec![0.0; outputs],
            m_w: vec![0.0; inputs * outputs],
            v_w: vec![0.0; inputs * outputs],
            m_b: vec![0.0; outputs],
            v_b: vec![0.0; outputs],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut out = self.biases.clone();
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            out[o] += row.iter().zip(x).map(|(&w, &xi)| w * xi).sum::<f64>();
        }
        out
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Huber loss transition point (in target units).
    pub huber_delta: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 60,
            batch_size: 64,
            learning_rate: 1e-3,
            huber_delta: 1.0,
        }
    }
}

/// A feed-forward network with ReLU hidden layers and a linear scalar output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    adam_t: u64,
}

impl Mlp {
    /// Builds a network with the given layer sizes, e.g. `&[17, 64, 64, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new(layer_sizes: &[usize], seed: u64) -> Self {
        assert!(
            layer_sizes.len() >= 2,
            "need at least input and output sizes"
        );
        assert!(
            layer_sizes.iter().all(|&s| s > 0),
            "layer sizes must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = layer_sizes
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        Self { layers, adam_t: 0 }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers.first().expect("non-empty").inputs
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").outputs
    }

    /// Forward pass returning all layer activations (post-ReLU for hidden
    /// layers, raw for the output layer). `activations[0]` is the input.
    fn forward_trace(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z = layer.forward(acts.last().expect("non-empty"));
            if li + 1 < self.layers.len() {
                for v in z.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            acts.push(z);
        }
        acts
    }

    /// Predicts the scalar output for a single input.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        *self
            .forward_trace(x)
            .last()
            .expect("non-empty activations")
            .first()
            .expect("scalar output")
    }

    /// Trains on `(inputs, targets)` with mini-batch Adam and Huber loss,
    /// returning the mean training loss of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or shapes are inconsistent.
    pub fn train(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[f64],
        config: &TrainConfig,
        seed: u64,
    ) -> f64 {
        assert!(!inputs.is_empty(), "training set is empty");
        assert_eq!(
            inputs.len(),
            targets.len(),
            "inputs/targets length mismatch"
        );
        assert!(inputs.iter().all(|x| x.len() == self.input_dim()));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        let mut last_epoch_loss = f64::INFINITY;

        for _epoch in 0..config.epochs {
            // Fisher–Yates shuffle with the seeded RNG.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            let mut seen = 0usize;
            for batch in order.chunks(config.batch_size) {
                epoch_loss += self.train_batch(inputs, targets, batch, config);
                seen += batch.len();
            }
            last_epoch_loss = epoch_loss / seen.max(1) as f64;
        }
        last_epoch_loss
    }

    /// One Adam step on a mini-batch; returns the summed Huber loss.
    fn train_batch(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[f64],
        batch: &[usize],
        config: &TrainConfig,
    ) -> f64 {
        let num_layers = self.layers.len();
        // Accumulated gradients per layer.
        let mut grad_w: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.weights.len()])
            .collect();
        let mut grad_b: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.biases.len()])
            .collect();
        let mut total_loss = 0.0;

        for &idx in batch {
            let acts = self.forward_trace(&inputs[idx]);
            let prediction = acts[num_layers][0];
            let error = prediction - targets[idx];
            // Huber loss and its derivative w.r.t. the prediction.
            let delta = config.huber_delta;
            let (loss, mut dloss) = if error.abs() <= delta {
                (0.5 * error * error, error)
            } else {
                (delta * (error.abs() - 0.5 * delta), delta * error.signum())
            };
            total_loss += loss;

            // Backward pass.
            let mut upstream = vec![dloss; 1];
            for li in (0..num_layers).rev() {
                let layer = &self.layers[li];
                let input = &acts[li];
                let output = &acts[li + 1];
                // dL/dz for this layer (apply ReLU mask except on output layer).
                let dz: Vec<f64> = if li + 1 == num_layers {
                    upstream.clone()
                } else {
                    upstream
                        .iter()
                        .zip(output)
                        .map(|(&u, &o)| if o > 0.0 { u } else { 0.0 })
                        .collect()
                };
                for o in 0..layer.outputs {
                    grad_b[li][o] += dz[o];
                    for i in 0..layer.inputs {
                        grad_w[li][o * layer.inputs + i] += dz[o] * input[i];
                    }
                }
                // Propagate to the previous layer.
                let mut next_upstream = vec![0.0; layer.inputs];
                for (i, slot) in next_upstream.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for o in 0..layer.outputs {
                        acc += layer.weights[o * layer.inputs + i] * dz[o];
                    }
                    *slot = acc;
                }
                upstream = next_upstream;
                // dloss only used on the first iteration; silence the lint.
                dloss = 0.0;
                let _ = dloss;
            }
        }

        // Adam update.
        self.adam_t += 1;
        let t = self.adam_t as f64;
        let (beta1, beta2, eps) = (0.9, 0.999, 1e-8);
        let scale = 1.0 / batch.len() as f64;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (k, g) in grad_w[li].iter().enumerate() {
                let g = g * scale;
                layer.m_w[k] = beta1 * layer.m_w[k] + (1.0 - beta1) * g;
                layer.v_w[k] = beta2 * layer.v_w[k] + (1.0 - beta2) * g * g;
                let m_hat = layer.m_w[k] / (1.0 - beta1.powf(t));
                let v_hat = layer.v_w[k] / (1.0 - beta2.powf(t));
                layer.weights[k] -= config.learning_rate * m_hat / (v_hat.sqrt() + eps);
            }
            for (k, g) in grad_b[li].iter().enumerate() {
                let g = g * scale;
                layer.m_b[k] = beta1 * layer.m_b[k] + (1.0 - beta1) * g;
                layer.v_b[k] = beta2 * layer.v_b[k] + (1.0 - beta2) * g * g;
                let m_hat = layer.m_b[k] / (1.0 - beta1.powf(t));
                let v_hat = layer.v_b[k] / (1.0 - beta2.powf(t));
                layer.biases[k] -= config.learning_rate * m_hat / (v_hat.sqrt() + eps);
            }
        }
        total_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_shapes() {
        let mlp = Mlp::new(&[4, 8, 1], 0);
        assert_eq!(mlp.input_dim(), 4);
        assert_eq!(mlp.output_dim(), 1);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_layer_spec() {
        let _ = Mlp::new(&[4], 0);
    }

    #[test]
    fn initialization_is_deterministic_per_seed() {
        assert_eq!(Mlp::new(&[3, 5, 1], 7), Mlp::new(&[3, 5, 1], 7));
        assert_ne!(Mlp::new(&[3, 5, 1], 7), Mlp::new(&[3, 5, 1], 8));
    }

    #[test]
    fn learns_a_linear_function() {
        // y = 2 x0 - x1 + 0.5
        let mut rng = StdRng::seed_from_u64(1);
        let inputs: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![rng.gen::<f64>() * 2.0 - 1.0, rng.gen::<f64>() * 2.0 - 1.0])
            .collect();
        let targets: Vec<f64> = inputs.iter().map(|x| 2.0 * x[0] - x[1] + 0.5).collect();
        let mut mlp = Mlp::new(&[2, 16, 1], 3);
        let config = TrainConfig {
            epochs: 200,
            batch_size: 32,
            learning_rate: 3e-3,
            huber_delta: 1.0,
        };
        mlp.train(&inputs, &targets, &config, 11);
        let mut max_err: f64 = 0.0;
        for (x, &y) in inputs.iter().zip(&targets).take(100) {
            max_err = max_err.max((mlp.predict(x) - y).abs());
        }
        assert!(
            max_err < 0.15,
            "max error {max_err} too large for a linear target"
        );
    }

    #[test]
    fn learns_a_nonlinear_function() {
        // y = |x0| (needs the ReLU nonlinearity).
        let mut rng = StdRng::seed_from_u64(2);
        let inputs: Vec<Vec<f64>> = (0..800)
            .map(|_| vec![rng.gen::<f64>() * 4.0 - 2.0])
            .collect();
        let targets: Vec<f64> = inputs.iter().map(|x| x[0].abs()).collect();
        let mut mlp = Mlp::new(&[1, 32, 32, 1], 5);
        let config = TrainConfig {
            epochs: 200,
            batch_size: 32,
            learning_rate: 3e-3,
            huber_delta: 1.0,
        };
        mlp.train(&inputs, &targets, &config, 13);
        let mean_err: f64 = inputs
            .iter()
            .zip(&targets)
            .take(200)
            .map(|(x, &y)| (mlp.predict(x) - y).abs())
            .sum::<f64>()
            / 200.0;
        assert!(mean_err < 0.15, "mean error {mean_err} too large for |x|");
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(3);
        let inputs: Vec<Vec<f64>> = (0..200).map(|_| vec![rng.gen::<f64>(); 3]).collect();
        let targets: Vec<f64> = inputs.iter().map(|x| x.iter().sum()).collect();
        let mut mlp = Mlp::new(&[3, 8, 1], 1);
        let short = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let long = TrainConfig {
            epochs: 120,
            ..TrainConfig::default()
        };
        let loss_short = mlp.clone().train(&inputs, &targets, &short, 5);
        let loss_long = mlp.train(&inputs, &targets, &long, 5);
        assert!(loss_long < loss_short, "{loss_long} !< {loss_short}");
    }

    #[test]
    fn training_is_deterministic() {
        let inputs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 50.0]).collect();
        let targets: Vec<f64> = inputs.iter().map(|x| 3.0 * x[0]).collect();
        let config = TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        };
        let mut a = Mlp::new(&[1, 8, 1], 9);
        let mut b = Mlp::new(&[1, 8, 1], 9);
        a.train(&inputs, &targets, &config, 2);
        b.train(&inputs, &targets, &config, 2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn predict_checks_input_length() {
        let mlp = Mlp::new(&[3, 4, 1], 0);
        let _ = mlp.predict(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "training set is empty")]
    fn train_rejects_empty_dataset() {
        let mut mlp = Mlp::new(&[2, 4, 1], 0);
        let _ = mlp.train(&[], &[], &TrainConfig::default(), 0);
    }
}
