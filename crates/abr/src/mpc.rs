//! MPC — model-predictive bitrate control (Yin et al., SIGCOMM 2015).

use serde::{Deserialize, Serialize};

use crate::context::{clamp_quality, AbrContext};
use crate::Abr;

/// QoE weights for the MPC objective.
///
/// The objective over the lookahead horizon is
/// `Σ bitrate_k − λ Σ |bitrate_k − bitrate_{k−1}| − μ Σ rebuffer_k`,
/// the linear QoE form from the MPC paper with bitrates in Mbps and
/// rebuffering in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoeWeights {
    /// Smoothness penalty per Mbps of bitrate change.
    pub smoothness_lambda: f64,
    /// Rebuffering penalty per second stalled.
    pub rebuffer_mu: f64,
}

impl Default for QoeWeights {
    fn default() -> Self {
        Self {
            smoothness_lambda: 1.0,
            rebuffer_mu: 8.0,
        }
    }
}

/// Model Predictive Control ABR.
///
/// At every chunk boundary the controller predicts future throughput with the
/// harmonic mean of recent observations (optionally discounted by the recent
/// maximum prediction error — RobustMPC), then exhaustively searches quality
/// assignments over a short lookahead horizon, simulating buffer evolution
/// and picking the first decision of the best plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mpc {
    /// Number of future chunks considered in the lookahead.
    pub horizon: usize,
    /// Number of past chunks in the harmonic-mean throughput predictor.
    pub prediction_window: usize,
    /// QoE weights.
    pub weights: QoeWeights,
    /// If true, discount the throughput prediction by the recent maximum
    /// relative error (RobustMPC).
    pub robust: bool,
}

impl Mpc {
    /// Standard MPC with a 5-chunk horizon.
    pub fn new() -> Self {
        Self {
            horizon: 5,
            prediction_window: 5,
            weights: QoeWeights::default(),
            robust: false,
        }
    }

    /// RobustMPC: same controller with an error-discounted predictor.
    pub fn robust() -> Self {
        Self {
            robust: true,
            ..Self::new()
        }
    }

    /// Overrides the lookahead horizon (must be ≥ 1; values above 5 get slow
    /// because the search is exhaustive).
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        assert!(horizon >= 1);
        self.horizon = horizon;
        self
    }

    /// Overrides the QoE weights.
    pub fn with_weights(mut self, weights: QoeWeights) -> Self {
        self.weights = weights;
        self
    }

    fn predicted_throughput(&self, ctx: &AbrContext) -> f64 {
        let base = ctx
            .harmonic_mean_throughput(self.prediction_window)
            .unwrap_or(1.0)
            .max(1e-3);
        if self.robust {
            let err = ctx.recent_prediction_error(self.prediction_window);
            base / (1.0 + err)
        } else {
            base
        }
    }

    /// Scores one candidate plan (quality per horizon step), returning the
    /// total QoE. Buffer evolution: each chunk takes `size / throughput` to
    /// download, during which the buffer drains; on completion it gains one
    /// chunk duration, capped at capacity.
    fn score_plan(&self, ctx: &AbrContext, plan: &[usize], predicted_throughput_mbps: f64) -> f64 {
        let asset = ctx.asset;
        let chunk_dur = asset.chunk_duration_s();
        let mut buffer = ctx.buffer_s;
        let mut qoe = 0.0;
        let mut prev_rate = ctx.last_quality.map(|q| asset.ladder().bitrate(q));
        for (step, &q) in plan.iter().enumerate() {
            let chunk = ctx.next_chunk + step;
            if chunk >= asset.num_chunks() {
                break;
            }
            let size = asset.size_bytes(chunk, q);
            let dt = size * 8.0 / 1e6 / predicted_throughput_mbps;
            let rebuffer = (dt - buffer).max(0.0);
            buffer = (buffer - dt).max(0.0) + chunk_dur;
            buffer = buffer.min(ctx.buffer_capacity_s);
            let rate = asset.ladder().bitrate(q);
            qoe += rate;
            if let Some(prev) = prev_rate {
                qoe -= self.weights.smoothness_lambda * (rate - prev).abs();
            }
            qoe -= self.weights.rebuffer_mu * rebuffer;
            prev_rate = Some(rate);
        }
        qoe
    }
}

impl Default for Mpc {
    fn default() -> Self {
        Self::new()
    }
}

impl Abr for Mpc {
    fn name(&self) -> &'static str {
        if self.robust {
            "RobustMPC"
        } else {
            "MPC"
        }
    }

    fn choose(&mut self, ctx: &AbrContext) -> usize {
        let num_q = ctx.num_qualities();
        if num_q == 1 {
            return 0;
        }
        let remaining = ctx.asset.num_chunks().saturating_sub(ctx.next_chunk);
        let horizon = self.horizon.min(remaining.max(1));
        let predicted = self.predicted_throughput(ctx);

        // Exhaustive search over quality assignments for the horizon,
        // enumerated as base-`num_q` counters.
        let mut best_plan_first = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        let total_plans = num_q.pow(horizon as u32);
        let mut plan = vec![0usize; horizon];
        for idx in 0..total_plans {
            let mut rem = idx;
            for slot in plan.iter_mut() {
                *slot = rem % num_q;
                rem /= num_q;
            }
            let score = self.score_plan(ctx, &plan, predicted);
            if score > best_score {
                best_score = score;
                best_plan_first = plan[0];
            }
        }
        clamp_quality(best_plan_first, num_q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veritas_media::VideoAsset;

    fn ctx<'a>(
        asset: &'a VideoAsset,
        tput: &'a [f64],
        buffer_s: f64,
        last_quality: Option<usize>,
    ) -> AbrContext<'a> {
        AbrContext {
            asset,
            next_chunk: 20,
            buffer_s,
            buffer_capacity_s: 5.0,
            throughput_history_mbps: tput,
            download_time_history_s: &[],
            last_quality,
        }
    }

    #[test]
    fn poor_throughput_history_selects_low_quality() {
        let asset = VideoAsset::paper_default(1);
        let mut mpc = Mpc::new();
        let tput = [0.2, 0.25, 0.2, 0.22];
        let q = mpc.choose(&ctx(&asset, &tput, 2.0, Some(0)));
        assert_eq!(q, 0, "0.2 Mbps history must keep MPC at the lowest rung");
    }

    #[test]
    fn rich_throughput_and_full_buffer_selects_high_quality() {
        let asset = VideoAsset::paper_default(1);
        let mut mpc = Mpc::new();
        let tput = [9.0, 9.5, 10.0, 9.0];
        let q = mpc.choose(&ctx(&asset, &tput, 5.0, Some(4)));
        assert!(q >= asset.num_qualities() - 2, "got rung {q}");
    }

    #[test]
    fn quality_is_weakly_monotone_in_predicted_throughput() {
        let asset = VideoAsset::paper_default(1);
        let mut mpc = Mpc::new();
        let mut prev = 0usize;
        for tput in [0.2, 0.5, 1.0, 2.0, 4.0, 6.0, 9.0] {
            let hist = [tput; 4];
            let q = mpc.choose(&ctx(&asset, &hist, 4.0, Some(prev)));
            assert!(q >= prev || q + 1 >= prev, "tput {tput}: {prev} -> {q}");
            prev = q;
        }
    }

    #[test]
    fn empty_buffer_is_conservative_even_with_good_history() {
        let asset = VideoAsset::paper_default(1);
        let mut mpc = Mpc::new();
        let tput = [6.0, 6.0, 6.0];
        let q_empty = mpc.choose(&ctx(&asset, &tput, 0.0, Some(2)));
        let q_full = mpc.choose(&ctx(&asset, &tput, 5.0, Some(2)));
        assert!(q_empty <= q_full);
    }

    #[test]
    fn robust_variant_is_no_more_aggressive_than_plain_mpc() {
        let asset = VideoAsset::paper_default(1);
        let mut mpc = Mpc::new();
        let mut robust = Mpc::robust();
        // Volatile history inflates the error estimate.
        let tput = [1.0, 8.0, 1.5, 7.0];
        let q_plain = mpc.choose(&ctx(&asset, &tput, 3.0, Some(2)));
        let q_robust = robust.choose(&ctx(&asset, &tput, 3.0, Some(2)));
        assert!(q_robust <= q_plain);
    }

    #[test]
    fn no_history_still_returns_a_valid_choice() {
        let asset = VideoAsset::paper_default(1);
        let mut mpc = Mpc::new();
        let q = mpc.choose(&ctx(&asset, &[], 1.0, None));
        assert!(q < asset.num_qualities());
    }

    #[test]
    fn horizon_end_of_video_does_not_panic() {
        let asset = VideoAsset::paper_default(1);
        let mut mpc = Mpc::new();
        let tput = [3.0, 3.0];
        let c = AbrContext {
            asset: &asset,
            next_chunk: asset.num_chunks() - 1,
            buffer_s: 3.0,
            buffer_capacity_s: 5.0,
            throughput_history_mbps: &tput,
            download_time_history_s: &[],
            last_quality: Some(2),
        };
        let q = mpc.choose(&c);
        assert!(q < asset.num_qualities());
    }

    #[test]
    fn smoothness_penalty_discourages_oscillation() {
        let asset = VideoAsset::paper_default(1);
        // With an enormous smoothness penalty the controller should stay at
        // the previous quality when throughput is moderate.
        let mut sticky = Mpc::new().with_weights(QoeWeights {
            smoothness_lambda: 100.0,
            rebuffer_mu: 8.0,
        });
        let tput = [2.5, 2.5, 2.5];
        let q = sticky.choose(&ctx(&asset, &tput, 4.0, Some(2)));
        assert_eq!(q, 2);
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(Mpc::new().name(), "MPC");
        assert_eq!(Mpc::robust().name(), "RobustMPC");
    }
}
