//! The decision context handed to an ABR algorithm at each chunk boundary.

use veritas_media::VideoAsset;

/// Everything an ABR algorithm is allowed to observe when picking the
/// quality of the next chunk.
///
/// This mirrors what a real client-side ABR sees: the manifest (sizes of the
/// upcoming chunks at every quality), its own buffer level, and the download
/// history of previous chunks — but *not* the intrinsic network bandwidth,
/// which is exactly the latent confounder Veritas later has to recover.
#[derive(Debug, Clone)]
pub struct AbrContext<'a> {
    /// The video being streamed (sizes and SSIM per chunk/quality).
    pub asset: &'a VideoAsset,
    /// Index of the chunk whose quality must be chosen now.
    pub next_chunk: usize,
    /// Current playback buffer level in seconds.
    pub buffer_s: f64,
    /// Maximum buffer the player will hold, in seconds.
    pub buffer_capacity_s: f64,
    /// Observed throughput of previously downloaded chunks in Mbps, oldest
    /// first.
    pub throughput_history_mbps: &'a [f64],
    /// Download times of previously downloaded chunks in seconds, oldest
    /// first.
    pub download_time_history_s: &'a [f64],
    /// Quality index chosen for the previous chunk, if any.
    pub last_quality: Option<usize>,
}

impl<'a> AbrContext<'a> {
    /// Harmonic mean of the last `window` observed throughputs (Mbps), the
    /// standard robust throughput predictor used by MPC-family algorithms.
    /// Returns `None` when there is no history yet.
    pub fn harmonic_mean_throughput(&self, window: usize) -> Option<f64> {
        let hist = self.throughput_history_mbps;
        if hist.is_empty() || window == 0 {
            return None;
        }
        let start = hist.len().saturating_sub(window);
        let recent = &hist[start..];
        let mut denom = 0.0;
        for &x in recent {
            if x <= 0.0 {
                return Some(0.0);
            }
            denom += 1.0 / x;
        }
        Some(recent.len() as f64 / denom)
    }

    /// Maximum relative error of the harmonic-mean predictor over the recent
    /// window, used by RobustMPC to discount its prediction.
    pub fn recent_prediction_error(&self, window: usize) -> f64 {
        let hist = self.throughput_history_mbps;
        if hist.len() < 2 {
            return 0.0;
        }
        let start = hist.len().saturating_sub(window + 1);
        let recent = &hist[start..];
        let mut max_err: f64 = 0.0;
        for i in 1..recent.len() {
            // Prediction for step i is the harmonic mean of everything
            // before it within the window.
            let prior = &recent[..i];
            let denom: f64 = prior.iter().map(|&x| 1.0 / x.max(1e-9)).sum();
            let pred = prior.len() as f64 / denom;
            let actual = recent[i].max(1e-9);
            max_err = max_err.max(((pred - actual) / actual).abs());
        }
        max_err
    }

    /// Number of quality rungs available.
    pub fn num_qualities(&self) -> usize {
        self.asset.num_qualities()
    }
}

/// A quality decision must always be a valid rung index; helper used by
/// implementations to clamp defensively.
pub fn clamp_quality(quality: usize, num_qualities: usize) -> usize {
    quality.min(num_qualities.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use veritas_media::VideoAsset;

    fn ctx<'a>(
        asset: &'a VideoAsset,
        tput: &'a [f64],
        dt: &'a [f64],
        buffer_s: f64,
    ) -> AbrContext<'a> {
        AbrContext {
            asset,
            next_chunk: 3,
            buffer_s,
            buffer_capacity_s: 5.0,
            throughput_history_mbps: tput,
            download_time_history_s: dt,
            last_quality: Some(1),
        }
    }

    #[test]
    fn harmonic_mean_of_uniform_history_is_the_value() {
        let asset = VideoAsset::paper_default(1);
        let tput = [4.0, 4.0, 4.0];
        let dt = [1.0, 1.0, 1.0];
        let c = ctx(&asset, &tput, &dt, 3.0);
        assert!((c.harmonic_mean_throughput(5).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_is_dominated_by_small_values() {
        let asset = VideoAsset::paper_default(1);
        let tput = [1.0, 9.0];
        let dt = [1.0, 1.0];
        let c = ctx(&asset, &tput, &dt, 3.0);
        let hm = c.harmonic_mean_throughput(5).unwrap();
        assert!(hm < 2.0, "harmonic mean {hm} should be pulled toward 1");
    }

    #[test]
    fn harmonic_mean_respects_window() {
        let asset = VideoAsset::paper_default(1);
        let tput = [0.1, 8.0, 8.0];
        let dt = [1.0, 1.0, 1.0];
        let c = ctx(&asset, &tput, &dt, 3.0);
        assert!((c.harmonic_mean_throughput(2).unwrap() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_empty_history_is_none() {
        let asset = VideoAsset::paper_default(1);
        let c = ctx(&asset, &[], &[], 3.0);
        assert!(c.harmonic_mean_throughput(5).is_none());
    }

    #[test]
    fn zero_throughput_history_gives_zero() {
        let asset = VideoAsset::paper_default(1);
        let tput = [0.0, 5.0];
        let dt = [1.0, 1.0];
        let c = ctx(&asset, &tput, &dt, 3.0);
        assert_eq!(c.harmonic_mean_throughput(5).unwrap(), 0.0);
    }

    #[test]
    fn prediction_error_is_zero_for_stable_history() {
        let asset = VideoAsset::paper_default(1);
        let tput = [4.0, 4.0, 4.0, 4.0];
        let dt = [1.0; 4];
        let c = ctx(&asset, &tput, &dt, 3.0);
        assert!(c.recent_prediction_error(5) < 1e-12);
    }

    #[test]
    fn prediction_error_grows_with_volatility() {
        let asset = VideoAsset::paper_default(1);
        let stable = [4.0, 4.0, 4.0, 4.0];
        let volatile = [1.0, 8.0, 2.0, 9.0];
        let dt = [1.0; 4];
        let c_stable = ctx(&asset, &stable, &dt, 3.0);
        let c_vol = ctx(&asset, &volatile, &dt, 3.0);
        assert!(c_vol.recent_prediction_error(5) > c_stable.recent_prediction_error(5));
    }

    #[test]
    fn clamp_quality_bounds() {
        assert_eq!(clamp_quality(7, 5), 4);
        assert_eq!(clamp_quality(2, 5), 2);
        assert_eq!(clamp_quality(0, 0), 0);
    }
}
