//! Simple ABR policies: rate-based, random, and fixed-quality.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::context::{clamp_quality, AbrContext};
use crate::Abr;

/// Rate-based adaptation: pick the highest rung whose nominal bitrate fits
/// under a safety-discounted harmonic-mean throughput estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputRule {
    /// Fraction of the predicted throughput the chosen bitrate may use.
    pub safety_factor: f64,
    /// Number of past chunks in the harmonic-mean predictor.
    pub prediction_window: usize,
}

impl ThroughputRule {
    /// The common 0.9 safety factor over a 5-chunk window.
    pub fn new() -> Self {
        Self {
            safety_factor: 0.9,
            prediction_window: 5,
        }
    }
}

impl Default for ThroughputRule {
    fn default() -> Self {
        Self::new()
    }
}

impl Abr for ThroughputRule {
    fn name(&self) -> &'static str {
        "ThroughputRule"
    }

    fn choose(&mut self, ctx: &AbrContext) -> usize {
        let predicted = ctx
            .harmonic_mean_throughput(self.prediction_window)
            .unwrap_or(0.0);
        let budget = predicted * self.safety_factor;
        let bitrates = ctx.asset.ladder().bitrates();
        let mut chosen = 0;
        for (q, &rate) in bitrates.iter().enumerate() {
            if rate <= budget {
                chosen = q;
            }
        }
        clamp_quality(chosen, ctx.num_qualities())
    }
}

/// Picks a uniformly random rung for every chunk.
///
/// This is not a serious ABR; it generates the randomized chunk-size
/// sequences the paper uses as the *test set* for interventional queries
/// (§4.4), where decisions must not correlate with network conditions.
#[derive(Debug, Clone)]
pub struct RandomAbr {
    rng: StdRng,
    seed: u64,
}

impl RandomAbr {
    /// A random policy seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }
}

impl Abr for RandomAbr {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn choose(&mut self, ctx: &AbrContext) -> usize {
        self.rng.gen_range(0..ctx.num_qualities())
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// Always selects the same rung (clamped to the ladder).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedQuality(pub usize);

impl Abr for FixedQuality {
    fn name(&self) -> &'static str {
        "Fixed"
    }

    fn choose(&mut self, ctx: &AbrContext) -> usize {
        clamp_quality(self.0, ctx.num_qualities())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veritas_media::VideoAsset;

    fn ctx<'a>(asset: &'a VideoAsset, tput: &'a [f64]) -> AbrContext<'a> {
        AbrContext {
            asset,
            next_chunk: 5,
            buffer_s: 3.0,
            buffer_capacity_s: 5.0,
            throughput_history_mbps: tput,
            download_time_history_s: &[],
            last_quality: None,
        }
    }

    #[test]
    fn throughput_rule_tracks_available_rate() {
        let asset = VideoAsset::paper_default(1);
        let mut rule = ThroughputRule::new();
        let low = [0.2, 0.2, 0.2];
        assert_eq!(rule.choose(&ctx(&asset, &low)), 0);
        let mid = [1.5, 1.5, 1.5];
        let q_mid = rule.choose(&ctx(&asset, &mid));
        assert!(
            (1..=2).contains(&q_mid),
            "1.5 Mbps fits the 1.0 rung: got {q_mid}"
        );
        let high = [9.0, 9.0, 9.0];
        assert_eq!(rule.choose(&ctx(&asset, &high)), asset.num_qualities() - 1);
    }

    #[test]
    fn throughput_rule_with_no_history_is_conservative() {
        let asset = VideoAsset::paper_default(1);
        let mut rule = ThroughputRule::new();
        assert_eq!(rule.choose(&ctx(&asset, &[])), 0);
    }

    #[test]
    fn random_abr_is_deterministic_per_seed_and_covers_rungs() {
        let asset = VideoAsset::paper_default(1);
        let mut a = RandomAbr::new(7);
        let mut b = RandomAbr::new(7);
        let picks_a: Vec<usize> = (0..50).map(|_| a.choose(&ctx(&asset, &[]))).collect();
        let picks_b: Vec<usize> = (0..50).map(|_| b.choose(&ctx(&asset, &[]))).collect();
        assert_eq!(picks_a, picks_b);
        let distinct: std::collections::BTreeSet<usize> = picks_a.iter().copied().collect();
        assert!(
            distinct.len() >= 3,
            "50 random picks should cover several rungs"
        );
        for &q in &picks_a {
            assert!(q < asset.num_qualities());
        }
    }

    #[test]
    fn random_abr_reset_replays_the_same_sequence() {
        let asset = VideoAsset::paper_default(1);
        let mut a = RandomAbr::new(11);
        let first: Vec<usize> = (0..10).map(|_| a.choose(&ctx(&asset, &[]))).collect();
        a.reset();
        let second: Vec<usize> = (0..10).map(|_| a.choose(&ctx(&asset, &[]))).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn fixed_quality_clamps() {
        let asset = VideoAsset::paper_default(1);
        let mut f = FixedQuality(2);
        assert_eq!(f.choose(&ctx(&asset, &[])), 2);
        let mut too_high = FixedQuality(99);
        assert_eq!(
            too_high.choose(&ctx(&asset, &[])),
            asset.num_qualities() - 1
        );
    }
}
