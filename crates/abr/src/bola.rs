//! BOLA — Lyapunov-based bitrate adaptation (Spiteri et al., INFOCOM 2016),
//! in the BOLA-BASIC form used by the Puffer deployment the paper cites.

use serde::{Deserialize, Serialize};

use crate::context::{clamp_quality, AbrContext};
use crate::Abr;

/// BOLA-BASIC.
///
/// Each rung gets a logarithmic utility `v_m = ln(S_m / S_min)` and the
/// controller maximizes `(V · (v_m + gp) − Q) / S_m`, where `Q` is the buffer
/// level in chunks and the control parameters `V`, `gp` are derived from two
/// buffer thresholds: well below `min_buffer_chunks` the lowest rung wins,
/// and from `max_buffer_chunks` upward the highest rung wins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BolaBasic {
    /// Buffer level (in chunks) below which the lowest quality is selected.
    pub min_buffer_chunks: f64,
    /// Buffer level (in chunks) at which the highest quality is selected.
    pub max_buffer_chunks: Option<f64>,
}

impl BolaBasic {
    /// BOLA-BASIC with thresholds derived from the player's buffer capacity
    /// at decision time (lowest rung below ~20% occupancy, highest at ~90%).
    pub fn new() -> Self {
        Self {
            min_buffer_chunks: f64::NAN, // derived from capacity at choose()
            max_buffer_chunks: None,
        }
    }

    /// Explicit thresholds in chunks.
    pub fn with_thresholds(min_buffer_chunks: f64, max_buffer_chunks: f64) -> Self {
        assert!(min_buffer_chunks > 0.0 && max_buffer_chunks > min_buffer_chunks);
        Self {
            min_buffer_chunks,
            max_buffer_chunks: Some(max_buffer_chunks),
        }
    }

    fn thresholds(&self, ctx: &AbrContext) -> (f64, f64) {
        let capacity_chunks = ctx.buffer_capacity_s / ctx.asset.chunk_duration_s();
        let min_b = if self.min_buffer_chunks.is_nan() {
            (0.2 * capacity_chunks).max(0.5)
        } else {
            self.min_buffer_chunks
        };
        let max_b = self
            .max_buffer_chunks
            .unwrap_or((0.9 * capacity_chunks).max(min_b + 0.5));
        (min_b, max_b.max(min_b + 1e-6))
    }
}

impl Default for BolaBasic {
    fn default() -> Self {
        Self::new()
    }
}

impl Abr for BolaBasic {
    fn name(&self) -> &'static str {
        "BOLA"
    }

    fn choose(&mut self, ctx: &AbrContext) -> usize {
        let asset = ctx.asset;
        let chunk = ctx.next_chunk.min(asset.num_chunks() - 1);
        let num_q = ctx.num_qualities();
        if num_q == 1 {
            return 0;
        }
        let sizes: Vec<f64> = (0..num_q).map(|q| asset.size_bytes(chunk, q)).collect();
        let s_min = sizes[0].max(1.0);
        let utilities: Vec<f64> = sizes.iter().map(|&s| (s / s_min).ln()).collect();
        let v_max = *utilities
            .last()
            .expect("ladder has at least two rungs here");

        let (min_buf, max_buf) = self.thresholds(ctx);
        // Solve for V and gp such that:
        //   objective crosses zero for the lowest rung at Q = min_buf
        //     (so below min_buf even the lowest rung is "not worth it" and,
        //      being the least negative score, it still wins)
        //   highest rung overtakes everything at Q = max_buf.
        // Following Puffer's BOLA-BASIC derivation:
        //   gp = (v_max · min_buf) / (max_buf − min_buf)
        //   V  = max_buf / (v_max + gp)
        let gp = (v_max * min_buf) / (max_buf - min_buf);
        let v = max_buf / (v_max + gp);

        let buffer_chunks = ctx.buffer_s / asset.chunk_duration_s();
        let mut best_q = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for q in 0..num_q {
            let score = (v * (utilities[q] + gp) - buffer_chunks) / sizes[q];
            if score > best_score {
                best_score = score;
                best_q = q;
            }
        }
        clamp_quality(best_q, num_q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veritas_media::VideoAsset;

    fn ctx(asset: &VideoAsset, buffer_s: f64, capacity_s: f64) -> AbrContext<'_> {
        AbrContext {
            asset,
            next_chunk: 15,
            buffer_s,
            buffer_capacity_s: capacity_s,
            throughput_history_mbps: &[],
            download_time_history_s: &[],
            last_quality: None,
        }
    }

    #[test]
    fn low_buffer_selects_low_quality() {
        let asset = VideoAsset::paper_default(1);
        let mut bola = BolaBasic::new();
        assert_eq!(bola.choose(&ctx(&asset, 0.0, 5.0)), 0);
        assert_eq!(bola.choose(&ctx(&asset, 0.4, 5.0)), 0);
    }

    #[test]
    fn high_buffer_selects_high_quality() {
        let asset = VideoAsset::paper_default(1);
        let mut bola = BolaBasic::new();
        let q = bola.choose(&ctx(&asset, 4.9, 5.0));
        assert!(q >= asset.num_qualities() - 2, "got rung {q}");
        let q30 = bola.choose(&ctx(&asset, 29.0, 30.0));
        assert!(q30 >= asset.num_qualities() - 2);
    }

    #[test]
    fn quality_is_weakly_monotone_in_buffer() {
        let asset = VideoAsset::paper_default(1);
        let mut bola = BolaBasic::new();
        let mut prev = 0usize;
        for i in 0..=25 {
            let buffer = i as f64 * 0.2;
            let q = bola.choose(&ctx(&asset, buffer, 5.0));
            assert!(
                q >= prev,
                "buffer {buffer}: quality dropped from {prev} to {q}"
            );
            prev = q;
        }
    }

    #[test]
    fn explicit_thresholds_are_respected() {
        let asset = VideoAsset::paper_default(1);
        let mut bola = BolaBasic::with_thresholds(1.0, 2.0);
        assert_eq!(
            bola.choose(&ctx(&asset, 0.6, 5.0)),
            0,
            "well below the min threshold the lowest rung must win"
        );
        let q = bola.choose(&ctx(&asset, 4.5, 5.0));
        assert!(
            q >= asset.num_qualities() - 2,
            "well above max threshold: rung {q}"
        );
        // Tighter thresholds make the policy more aggressive at the same
        // buffer level than looser ones.
        let mut loose = BolaBasic::with_thresholds(2.0, 14.0);
        assert!(bola.choose(&ctx(&asset, 3.0, 30.0)) >= loose.choose(&ctx(&asset, 3.0, 30.0)));
    }

    #[test]
    fn always_returns_valid_rung() {
        let asset = VideoAsset::paper_default(2);
        let mut bola = BolaBasic::new();
        for chunk in [0usize, 50, 299] {
            for buffer in [0.0, 1.0, 2.5, 5.0, 20.0] {
                let c = AbrContext {
                    asset: &asset,
                    next_chunk: chunk,
                    buffer_s: buffer,
                    buffer_capacity_s: 5.0,
                    throughput_history_mbps: &[],
                    download_time_history_s: &[],
                    last_quality: None,
                };
                assert!(bola.choose(&c) < asset.num_qualities());
            }
        }
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_thresholds() {
        let _ = BolaBasic::with_thresholds(3.0, 1.0);
    }
}
