//! Adaptive bitrate (ABR) algorithms.
//!
//! The paper's counterfactual queries swap one ABR for another on the same
//! (latent) network conditions, so this crate implements the algorithms the
//! evaluation uses — [`Mpc`] (the deployed algorithm, Setting A), [`Bba`] and
//! [`BolaBasic`] (the counterfactual algorithms, Setting B) — plus auxiliary
//! policies used elsewhere in the pipeline: [`ThroughputRule`] as a simple
//! rate-based reference, [`RandomAbr`] to generate the randomized test
//! sequences for interventional evaluation, and [`FixedQuality`] for
//! controlled experiments.
//!
//! All algorithms see the world only through [`AbrContext`]: manifest sizes,
//! buffer state, and download history — never the intrinsic bandwidth. That
//! information asymmetry is what creates the confounding Veritas corrects.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod bba;
mod bola;
mod context;
mod mpc;
mod simple;

pub use bba::Bba;
pub use bola::BolaBasic;
pub use context::{clamp_quality, AbrContext};
pub use mpc::{Mpc, QoeWeights};
pub use simple::{FixedQuality, RandomAbr, ThroughputRule};

/// An adaptive bitrate algorithm.
///
/// Implementations are driven by the player emulator: at each chunk boundary
/// [`Abr::choose`] is called with the current [`AbrContext`] and must return
/// a rung index into the asset's quality ladder.
pub trait Abr {
    /// Human-readable algorithm name (used in logs and experiment output).
    fn name(&self) -> &str;

    /// Chooses the quality rung for `ctx.next_chunk`.
    fn choose(&mut self, ctx: &AbrContext) -> usize;

    /// Resets any internal state so the same instance can replay another
    /// session deterministically.
    fn reset(&mut self) {}
}

/// Convenience constructor used by experiment configuration: builds a boxed
/// ABR by name. Recognized names: `"mpc"`, `"robust_mpc"`, `"bba"`,
/// `"bola"`, `"throughput"`, `"random:<seed>"`, `"fixed:<rung>"`.
pub fn abr_by_name(name: &str) -> Option<Box<dyn Abr>> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "mpc" => Some(Box::new(Mpc::new())),
        "robust_mpc" | "robustmpc" => Some(Box::new(Mpc::robust())),
        "bba" => Some(Box::new(Bba::new())),
        "bola" | "bola_basic" => Some(Box::new(BolaBasic::new())),
        "throughput" | "rate" => Some(Box::new(ThroughputRule::new())),
        _ => {
            if let Some(seed) = lower.strip_prefix("random:") {
                seed.parse()
                    .ok()
                    .map(|s| Box::new(RandomAbr::new(s)) as Box<dyn Abr>)
            } else if let Some(rung) = lower.strip_prefix("fixed:") {
                rung.parse()
                    .ok()
                    .map(|r| Box::new(FixedQuality(r)) as Box<dyn Abr>)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abr_by_name_builds_known_algorithms() {
        for (name, expected) in [
            ("mpc", "MPC"),
            ("MPC", "MPC"),
            ("robust_mpc", "RobustMPC"),
            ("bba", "BBA"),
            ("bola", "BOLA"),
            ("throughput", "ThroughputRule"),
            ("random:3", "Random"),
            ("fixed:2", "Fixed"),
        ] {
            let abr = abr_by_name(name).unwrap_or_else(|| panic!("{name} not recognized"));
            assert_eq!(abr.name(), expected);
        }
    }

    #[test]
    fn abr_by_name_rejects_unknown() {
        assert!(abr_by_name("pensieve").is_none());
        assert!(abr_by_name("random:notanumber").is_none());
        assert!(abr_by_name("fixed:").is_none());
    }
}
