//! BBA — the buffer-based rate adaptation of Huang et al. (SIGCOMM 2014).

use serde::{Deserialize, Serialize};

use crate::context::{clamp_quality, AbrContext};
use crate::Abr;

/// Buffer-Based Adaptation (BBA-0): the chosen bitrate is a piecewise-linear
/// function of the current buffer occupancy.
///
/// Below the *reservoir* the lowest quality is selected; above the *cushion*
/// the highest; in between the rate map interpolates linearly between the
/// minimum and maximum available bitrates. Reservoir and cushion are
/// expressed as fractions of the player's buffer capacity so the same policy
/// works for the 5 s and 30 s buffer settings used in the paper's
/// counterfactuals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bba {
    /// Fraction of buffer capacity reserved before leaving the lowest rung.
    pub reservoir_fraction: f64,
    /// Fraction of buffer capacity at which the highest rung is reached.
    pub cushion_fraction: f64,
}

impl Bba {
    /// BBA with the standard 10% reservoir / 90% cushion split.
    pub fn new() -> Self {
        Self {
            reservoir_fraction: 0.10,
            cushion_fraction: 0.90,
        }
    }

    /// Custom reservoir/cushion fractions (both in `(0, 1)`, reservoir <
    /// cushion).
    pub fn with_fractions(reservoir_fraction: f64, cushion_fraction: f64) -> Self {
        assert!(reservoir_fraction > 0.0 && cushion_fraction < 1.0001);
        assert!(reservoir_fraction < cushion_fraction);
        Self {
            reservoir_fraction,
            cushion_fraction,
        }
    }

    /// The rate-map value (Mbps) for a buffer level.
    fn rate_map(&self, ctx: &AbrContext) -> f64 {
        let bitrates = ctx.asset.ladder().bitrates();
        let r_min = bitrates[0];
        let r_max = *bitrates.last().expect("ladder is non-empty");
        let reservoir = self.reservoir_fraction * ctx.buffer_capacity_s;
        let cushion_end = self.cushion_fraction * ctx.buffer_capacity_s;
        if ctx.buffer_s <= reservoir {
            r_min
        } else if ctx.buffer_s >= cushion_end {
            r_max
        } else {
            let frac = (ctx.buffer_s - reservoir) / (cushion_end - reservoir);
            r_min + frac * (r_max - r_min)
        }
    }
}

impl Default for Bba {
    fn default() -> Self {
        Self::new()
    }
}

impl Abr for Bba {
    fn name(&self) -> &'static str {
        "BBA"
    }

    fn choose(&mut self, ctx: &AbrContext) -> usize {
        let target_rate = self.rate_map(ctx);
        let bitrates = ctx.asset.ladder().bitrates();
        // Highest rung whose nominal bitrate does not exceed the rate map.
        let mut chosen = 0;
        for (q, &rate) in bitrates.iter().enumerate() {
            if rate <= target_rate + 1e-12 {
                chosen = q;
            }
        }
        clamp_quality(chosen, ctx.num_qualities())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veritas_media::VideoAsset;

    fn ctx(asset: &VideoAsset, buffer_s: f64, capacity_s: f64) -> AbrContext<'_> {
        AbrContext {
            asset,
            next_chunk: 10,
            buffer_s,
            buffer_capacity_s: capacity_s,
            throughput_history_mbps: &[],
            download_time_history_s: &[],
            last_quality: None,
        }
    }

    #[test]
    fn empty_buffer_selects_lowest_quality() {
        let asset = VideoAsset::paper_default(1);
        let mut bba = Bba::new();
        assert_eq!(bba.choose(&ctx(&asset, 0.0, 5.0)), 0);
        assert_eq!(bba.choose(&ctx(&asset, 0.3, 5.0)), 0);
    }

    #[test]
    fn full_buffer_selects_highest_quality() {
        let asset = VideoAsset::paper_default(1);
        let mut bba = Bba::new();
        let top = asset.num_qualities() - 1;
        assert_eq!(bba.choose(&ctx(&asset, 5.0, 5.0)), top);
        assert_eq!(bba.choose(&ctx(&asset, 29.0, 30.0)), top);
    }

    #[test]
    fn quality_is_monotone_in_buffer_level() {
        let asset = VideoAsset::paper_default(1);
        let mut bba = Bba::new();
        let mut prev = 0usize;
        for i in 0..=20 {
            let buffer = i as f64 * 0.25;
            let q = bba.choose(&ctx(&asset, buffer, 5.0));
            assert!(
                q >= prev,
                "buffer {buffer}: quality dropped from {prev} to {q}"
            );
            prev = q;
        }
    }

    #[test]
    fn scales_with_buffer_capacity() {
        let asset = VideoAsset::paper_default(1);
        let mut bba = Bba::new();
        // 3 s of buffer is most of a 5 s capacity but little of a 30 s one.
        let q_small_cap = bba.choose(&ctx(&asset, 3.0, 5.0));
        let q_large_cap = bba.choose(&ctx(&asset, 3.0, 30.0));
        assert!(q_small_cap >= q_large_cap);
    }

    #[test]
    fn choice_is_always_a_valid_rung() {
        let asset = VideoAsset::paper_default(1);
        let mut bba = Bba::with_fractions(0.2, 0.8);
        for i in 0..40 {
            let q = bba.choose(&ctx(&asset, i as f64, 30.0));
            assert!(q < asset.num_qualities());
        }
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_fractions() {
        let _ = Bba::with_fractions(0.9, 0.2);
    }
}
