//! Video content model for the Veritas reproduction.
//!
//! Provides quality ladders, a variable-bitrate (VBR) chunked video asset
//! with per-chunk sizes and SSIM values, and the calibrated bitrate→SSIM
//! model standing in for the paper's pre-encoded 10-minute test clip (see
//! `DESIGN.md` for the substitution rationale).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod ladder;
pub mod ssim;

pub use ladder::{Encoding, QualityLadder, VbrParams, VideoAsset};
pub use ssim::{ssim_to_db, SsimModel};
