//! Quality ladders and variable-bitrate (VBR) video assets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::ssim::SsimModel;

/// One encoding (rung) of a quality ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Encoding {
    /// Human-readable name, e.g. `"720p"`.
    pub name: String,
    /// Nominal (target) bitrate in Mbps.
    pub nominal_bitrate_mbps: f64,
}

/// An ordered set of encodings, lowest quality first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityLadder {
    encodings: Vec<Encoding>,
}

impl QualityLadder {
    /// Builds a ladder from encodings; they are sorted by nominal bitrate.
    ///
    /// # Panics
    ///
    /// Panics if `encodings` is empty or contains a non-positive bitrate.
    pub fn new(mut encodings: Vec<Encoding>) -> Self {
        assert!(
            !encodings.is_empty(),
            "a quality ladder needs at least one encoding"
        );
        assert!(
            encodings.iter().all(|e| e.nominal_bitrate_mbps > 0.0),
            "bitrates must be positive"
        );
        encodings.sort_by(|a, b| {
            a.nominal_bitrate_mbps
                .partial_cmp(&b.nominal_bitrate_mbps)
                .expect("finite bitrates")
        });
        Self { encodings }
    }

    /// Builds a ladder from bare bitrates with generated names.
    pub fn from_bitrates(bitrates_mbps: &[f64]) -> Self {
        Self::new(
            bitrates_mbps
                .iter()
                .map(|&b| Encoding {
                    name: format!("{b:.1}Mbps"),
                    nominal_bitrate_mbps: b,
                })
                .collect(),
        )
    }

    /// The paper's evaluation ladder: encodings spanning 0.1–4 Mbps.
    pub fn paper_default() -> Self {
        Self::from_bitrates(&[0.1, 0.4, 1.0, 2.5, 4.0])
    }

    /// The "higher set of qualities" ladder for the change-of-qualities
    /// counterfactual (§4.3): the low rungs are dropped and higher rates are
    /// offered instead.
    pub fn paper_higher_qualities() -> Self {
        Self::from_bitrates(&[1.0, 2.5, 4.0, 6.0, 8.0])
    }

    /// Encodings, lowest bitrate first.
    pub fn encodings(&self) -> &[Encoding] {
        &self.encodings
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.encodings.len()
    }

    /// Whether the ladder is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.encodings.is_empty()
    }

    /// Nominal bitrate of rung `quality`.
    pub fn bitrate(&self, quality: usize) -> f64 {
        self.encodings[quality].nominal_bitrate_mbps
    }

    /// All nominal bitrates, lowest first.
    pub fn bitrates(&self) -> Vec<f64> {
        self.encodings
            .iter()
            .map(|e| e.nominal_bitrate_mbps)
            .collect()
    }
}

/// Per-chunk, per-quality sizes and SSIM values of a specific video.
///
/// The asset is generated once (seeded) and then shared by both the
/// "deployed" setting and any counterfactual setting, so that what-if
/// replays differ only in the decisions, never in the content.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoAsset {
    ladder: QualityLadder,
    chunk_duration_s: f64,
    /// `sizes[chunk][quality]` in bytes.
    sizes_bytes: Vec<Vec<f64>>,
    /// `ssim[chunk][quality]` in `[0, 1]`.
    ssims: Vec<Vec<f64>>,
}

/// Parameters controlling VBR generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VbrParams {
    /// Standard deviation of the per-chunk scene-complexity multiplier
    /// (log-normal, mean 1).
    pub complexity_std: f64,
    /// Standard deviation of the per-(chunk, quality) size jitter.
    pub size_jitter_std: f64,
}

impl Default for VbrParams {
    fn default() -> Self {
        Self {
            complexity_std: 0.25,
            size_jitter_std: 0.05,
        }
    }
}

impl VideoAsset {
    /// Generates a VBR asset of `duration_s` seconds cut into
    /// `chunk_duration_s` chunks over `ladder`, seeded by `seed`.
    pub fn generate(
        ladder: QualityLadder,
        duration_s: f64,
        chunk_duration_s: f64,
        params: VbrParams,
        seed: u64,
    ) -> Self {
        assert!(duration_s > 0.0 && chunk_duration_s > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let ssim_model = SsimModel::paper_calibrated();
        let num_chunks = (duration_s / chunk_duration_s).round().max(1.0) as usize;
        let mut sizes = Vec::with_capacity(num_chunks);
        let mut ssims = Vec::with_capacity(num_chunks);
        for _ in 0..num_chunks {
            // Scene complexity is shared across qualities of the same chunk:
            // a complex scene costs more bytes at every rung and still looks
            // slightly worse.
            let complexity = log_normal(&mut rng, params.complexity_std);
            let mut chunk_sizes = Vec::with_capacity(ladder.len());
            let mut chunk_ssims = Vec::with_capacity(ladder.len());
            for enc in ladder.encodings() {
                let jitter = log_normal(&mut rng, params.size_jitter_std);
                let actual_bitrate = enc.nominal_bitrate_mbps * complexity * jitter;
                let size_bytes = actual_bitrate * 1e6 / 8.0 * chunk_duration_s;
                chunk_sizes.push(size_bytes.max(200.0));
                chunk_ssims
                    .push(ssim_model.ssim_with_complexity(enc.nominal_bitrate_mbps, complexity));
            }
            sizes.push(chunk_sizes);
            ssims.push(chunk_ssims);
        }
        Self {
            ladder,
            chunk_duration_s,
            sizes_bytes: sizes,
            ssims,
        }
    }

    /// The paper's default 10-minute clip with 2-second chunks on the
    /// standard ladder.
    pub fn paper_default(seed: u64) -> Self {
        Self::generate(
            QualityLadder::paper_default(),
            600.0,
            2.0,
            VbrParams::default(),
            seed,
        )
    }

    /// Re-encodes the *same content* onto a different ladder: scene
    /// complexities are preserved (they are derived from the stored data) so
    /// counterfactual "change the quality set" queries compare like with
    /// like.
    pub fn reencoded(&self, ladder: QualityLadder) -> Self {
        let ssim_model = SsimModel::paper_calibrated();
        let mut sizes = Vec::with_capacity(self.num_chunks());
        let mut ssims = Vec::with_capacity(self.num_chunks());
        for chunk in 0..self.num_chunks() {
            // Recover this chunk's complexity from the stored lowest-rung
            // size relative to its nominal bitrate.
            let nominal = self.ladder.bitrate(0);
            let actual = self.sizes_bytes[chunk][0] * 8.0 / 1e6 / self.chunk_duration_s;
            let complexity = (actual / nominal).max(0.05);
            let mut chunk_sizes = Vec::with_capacity(ladder.len());
            let mut chunk_ssims = Vec::with_capacity(ladder.len());
            for enc in ladder.encodings() {
                let size_bytes =
                    enc.nominal_bitrate_mbps * complexity * 1e6 / 8.0 * self.chunk_duration_s;
                chunk_sizes.push(size_bytes.max(200.0));
                chunk_ssims
                    .push(ssim_model.ssim_with_complexity(enc.nominal_bitrate_mbps, complexity));
            }
            sizes.push(chunk_sizes);
            ssims.push(chunk_ssims);
        }
        Self {
            ladder,
            chunk_duration_s: self.chunk_duration_s,
            sizes_bytes: sizes,
            ssims,
        }
    }

    /// The quality ladder of this asset.
    pub fn ladder(&self) -> &QualityLadder {
        &self.ladder
    }

    /// Number of chunks in the video.
    pub fn num_chunks(&self) -> usize {
        self.sizes_bytes.len()
    }

    /// Number of quality rungs.
    pub fn num_qualities(&self) -> usize {
        self.ladder.len()
    }

    /// Playback duration of one chunk in seconds.
    pub fn chunk_duration_s(&self) -> f64 {
        self.chunk_duration_s
    }

    /// Total playback duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.chunk_duration_s * self.num_chunks() as f64
    }

    /// Encoded size in bytes of `(chunk, quality)`.
    pub fn size_bytes(&self, chunk: usize, quality: usize) -> f64 {
        self.sizes_bytes[chunk][quality]
    }

    /// SSIM of `(chunk, quality)`.
    pub fn ssim(&self, chunk: usize, quality: usize) -> f64 {
        self.ssims[chunk][quality]
    }

    /// Actual (VBR) bitrate in Mbps of `(chunk, quality)`.
    pub fn bitrate_mbps(&self, chunk: usize, quality: usize) -> f64 {
        self.size_bytes(chunk, quality) * 8.0 / 1e6 / self.chunk_duration_s
    }

    /// Mean SSIM of a quality rung across the whole video.
    pub fn mean_ssim(&self, quality: usize) -> f64 {
        self.ssims.iter().map(|c| c[quality]).sum::<f64>() / self.num_chunks() as f64
    }
}

fn log_normal<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    // Box–Muller; mean of the underlying normal chosen so E[x] == 1.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (z * sigma - sigma * sigma / 2.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_sorts_and_validates() {
        let l = QualityLadder::from_bitrates(&[4.0, 0.1, 1.0]);
        assert_eq!(l.bitrates(), vec![0.1, 1.0, 4.0]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one encoding")]
    fn ladder_rejects_empty() {
        let _ = QualityLadder::from_bitrates(&[]);
    }

    #[test]
    fn paper_ladders_have_expected_span() {
        let std = QualityLadder::paper_default();
        assert_eq!(std.bitrate(0), 0.1);
        assert_eq!(std.bitrate(std.len() - 1), 4.0);
        let hi = QualityLadder::paper_higher_qualities();
        assert!(hi.bitrate(0) > std.bitrate(0));
        assert!(hi.bitrate(hi.len() - 1) > std.bitrate(std.len() - 1));
    }

    #[test]
    fn asset_has_expected_shape() {
        let a = VideoAsset::paper_default(1);
        assert_eq!(a.num_chunks(), 300);
        assert_eq!(a.num_qualities(), 5);
        assert_eq!(a.chunk_duration_s(), 2.0);
        assert!((a.duration_s() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn asset_generation_is_deterministic() {
        let a = VideoAsset::paper_default(7);
        let b = VideoAsset::paper_default(7);
        assert_eq!(a, b);
        let c = VideoAsset::paper_default(8);
        assert_ne!(a, c);
    }

    #[test]
    fn sizes_increase_with_quality_within_a_chunk() {
        let a = VideoAsset::paper_default(3);
        for chunk in 0..a.num_chunks() {
            for q in 1..a.num_qualities() {
                assert!(
                    a.size_bytes(chunk, q) > a.size_bytes(chunk, q - 1),
                    "chunk {chunk} quality {q} is smaller than the rung below"
                );
            }
        }
    }

    #[test]
    fn ssim_increases_with_quality_within_a_chunk() {
        let a = VideoAsset::paper_default(3);
        for chunk in 0..a.num_chunks() {
            for q in 1..a.num_qualities() {
                assert!(a.ssim(chunk, q) >= a.ssim(chunk, q - 1));
            }
        }
    }

    #[test]
    fn mean_ssim_matches_paper_endpoints_roughly() {
        let a = VideoAsset::paper_default(11);
        let low = a.mean_ssim(0);
        let high = a.mean_ssim(a.num_qualities() - 1);
        assert!((low - 0.908).abs() < 0.02, "low rung mean SSIM {low}");
        assert!((high - 0.986).abs() < 0.01, "high rung mean SSIM {high}");
    }

    #[test]
    fn vbr_sizes_vary_across_chunks() {
        let a = VideoAsset::paper_default(5);
        let q = a.num_qualities() - 1;
        let sizes: Vec<f64> = (0..a.num_chunks()).map(|c| a.size_bytes(c, q)).collect();
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        let min = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > mean * 1.2,
            "VBR should produce chunks well above the mean"
        );
        assert!(
            min < mean * 0.8,
            "VBR should produce chunks well below the mean"
        );
    }

    #[test]
    fn vbr_mean_bitrate_tracks_nominal() {
        let a = VideoAsset::paper_default(9);
        for q in 0..a.num_qualities() {
            let mean_rate = (0..a.num_chunks())
                .map(|c| a.bitrate_mbps(c, q))
                .sum::<f64>()
                / a.num_chunks() as f64;
            let nominal = a.ladder().bitrate(q);
            assert!(
                (mean_rate - nominal).abs() / nominal < 0.15,
                "quality {q}: mean VBR rate {mean_rate} vs nominal {nominal}"
            );
        }
    }

    #[test]
    fn reencoding_preserves_complexity_ordering() {
        let a = VideoAsset::paper_default(13);
        let hi = a.reencoded(QualityLadder::paper_higher_qualities());
        assert_eq!(hi.num_chunks(), a.num_chunks());
        assert_eq!(hi.num_qualities(), 5);
        // A chunk that is large (complex) in the original asset must also be
        // large in the re-encoded one, at the corresponding rung.
        let q_orig = a.num_qualities() - 1;
        let q_new = hi.num_qualities() - 1;
        let mut orig: Vec<(usize, f64)> = (0..a.num_chunks())
            .map(|c| (c, a.size_bytes(c, q_orig)))
            .collect();
        orig.sort_by(|x, y| x.1.partial_cmp(&y.1).unwrap());
        let biggest = orig.last().unwrap().0;
        let smallest = orig.first().unwrap().0;
        assert!(hi.size_bytes(biggest, q_new) > hi.size_bytes(smallest, q_new));
    }

    #[test]
    fn log_normal_is_centred_near_one() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 20_000;
        let mean = (0..n).map(|_| log_normal(&mut rng, 0.25)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert_eq!(log_normal(&mut rng, 0.0), 1.0);
    }
}
