//! Bitrate → SSIM quality model.
//!
//! The paper measures video quality with SSIM and reports that its test
//! video's lowest and highest encodings average 0.908 and 0.986 SSIM. Real
//! per-chunk SSIM values come from the encoder; here we substitute a
//! calibrated, monotone, concave rate–quality curve (diminishing returns in
//! bitrate), which preserves everything the evaluation depends on: ordering
//! of qualities, saturation at high rates, and per-chunk variation with
//! scene complexity.

/// Rate–quality curve `ssim(b) = 1 - alpha * b^(-beta)` calibrated so that a
/// 0.1 Mbps encode averages ≈0.908 SSIM and a 4 Mbps encode averages ≈0.986.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsimModel {
    /// Multiplicative distortion coefficient.
    pub alpha: f64,
    /// Rate-decay exponent.
    pub beta: f64,
}

impl SsimModel {
    /// The calibration used throughout the reproduction (see module docs).
    pub fn paper_calibrated() -> Self {
        Self {
            alpha: 0.0284,
            beta: 0.51,
        }
    }

    /// Mean SSIM of an encoding at `bitrate_mbps`, before per-chunk
    /// complexity adjustment.
    pub fn ssim(&self, bitrate_mbps: f64) -> f64 {
        if bitrate_mbps <= 0.0 {
            return 0.0;
        }
        (1.0 - self.alpha * bitrate_mbps.powf(-self.beta)).clamp(0.0, 1.0)
    }

    /// SSIM for a chunk whose scene complexity multiplies the distortion:
    /// `complexity > 1` means a harder-to-encode chunk (lower SSIM at the
    /// same rate), `< 1` an easier one.
    pub fn ssim_with_complexity(&self, bitrate_mbps: f64, complexity: f64) -> f64 {
        if bitrate_mbps <= 0.0 {
            return 0.0;
        }
        let c = complexity.max(0.05);
        (1.0 - self.alpha * c * bitrate_mbps.powf(-self.beta)).clamp(0.0, 1.0)
    }
}

impl Default for SsimModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

/// Converts an SSIM index into the dB scale used by Puffer/Fugu-style QoE
/// objectives: `-10 * log10(1 - ssim)`. SSIM of exactly 1.0 is clamped to a
/// finite 60 dB ceiling.
pub fn ssim_to_db(ssim: f64) -> f64 {
    let distortion = (1.0 - ssim).max(1e-6);
    (-10.0 * distortion.log10()).min(60.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_endpoints() {
        let m = SsimModel::paper_calibrated();
        assert!(
            (m.ssim(0.1) - 0.908).abs() < 0.005,
            "low quality: {}",
            m.ssim(0.1)
        );
        assert!(
            (m.ssim(4.0) - 0.986).abs() < 0.005,
            "high quality: {}",
            m.ssim(4.0)
        );
    }

    #[test]
    fn ssim_is_monotone_in_bitrate() {
        let m = SsimModel::default();
        let mut prev = 0.0;
        for b in [0.05, 0.1, 0.4, 1.0, 2.5, 4.0, 6.0, 8.0] {
            let s = m.ssim(b);
            assert!(s > prev, "bitrate {b} broke monotonicity");
            prev = s;
        }
    }

    #[test]
    fn ssim_has_diminishing_returns() {
        let m = SsimModel::default();
        let gain_low = m.ssim(0.4) - m.ssim(0.1);
        let gain_high = m.ssim(4.0) - m.ssim(3.7);
        assert!(gain_low > gain_high * 5.0);
    }

    #[test]
    fn ssim_is_bounded() {
        let m = SsimModel::default();
        assert_eq!(m.ssim(0.0), 0.0);
        assert_eq!(m.ssim(-1.0), 0.0);
        assert!(m.ssim(1e9) <= 1.0);
        assert!(m.ssim_with_complexity(0.001, 100.0) >= 0.0);
    }

    #[test]
    fn complexity_lowers_quality_at_fixed_rate() {
        let m = SsimModel::default();
        assert!(m.ssim_with_complexity(1.0, 1.5) < m.ssim_with_complexity(1.0, 1.0));
        assert!(m.ssim_with_complexity(1.0, 0.5) > m.ssim_with_complexity(1.0, 1.0));
    }

    #[test]
    fn db_conversion_is_monotone_and_finite() {
        assert!(ssim_to_db(0.99) > ssim_to_db(0.9));
        assert!(ssim_to_db(1.0).is_finite());
        assert!(ssim_to_db(1.0) <= 60.0);
    }
}
