//! End-to-end counterfactual pipeline tests spanning every crate:
//! trace generation → emulation (Setting A) → abduction → replay (Setting B)
//! → comparison against Baseline and the ground-truth Oracle.

use veritas::{CounterfactualEngine, Scenario, VeritasConfig};
use veritas_abr::Mpc;
use veritas_media::{QualityLadder, VbrParams, VideoAsset};
use veritas_player::{run_session, PlayerConfig, SessionLog};
use veritas_trace::generators::{FccLike, TraceGenerator};
use veritas_trace::BandwidthTrace;

fn asset() -> VideoAsset {
    // A 4-minute clip keeps the end-to-end tests fast while exercising every
    // code path (off-periods, rebuffering, VBR).
    VideoAsset::generate(
        QualityLadder::paper_default(),
        240.0,
        2.0,
        VbrParams::default(),
        11,
    )
}

fn deployed(truth: &BandwidthTrace) -> SessionLog {
    let mut abr = Mpc::new();
    run_session(&asset(), &mut abr, truth, &PlayerConfig::paper_default())
}

fn engine() -> CounterfactualEngine {
    CounterfactualEngine::new(VeritasConfig::paper_default().with_samples(3))
}

#[test]
fn abr_change_counterfactual_tracks_the_oracle_better_than_baseline() {
    let generator = FccLike::new(3.0, 8.0);
    let scenario = Scenario::new("bba", PlayerConfig::paper_default(), asset());
    let e = engine();
    let mut veritas_err = 0.0;
    let mut baseline_err = 0.0;
    for seed in 0..3u64 {
        let truth = generator.generate(600.0, 500 + seed);
        let log = deployed(&truth);
        let cmp = e.compare(&log, &truth, &scenario);
        veritas_err +=
            (cmp.veritas.median_of(|q| q.avg_bitrate_mbps) - cmp.oracle.avg_bitrate_mbps).abs();
        baseline_err += (cmp.baseline.avg_bitrate_mbps - cmp.oracle.avg_bitrate_mbps).abs();
    }
    assert!(
        veritas_err <= baseline_err + 0.05,
        "Veritas bitrate error {veritas_err} vs Baseline {baseline_err}"
    );
}

#[test]
fn quality_change_counterfactual_is_tracked_better_by_veritas() {
    // The paper's headline example (§1, §4.3): move to a higher quality
    // ladder. The Baseline replays on a conservative bandwidth estimate, so
    // it under-predicts the achievable bitrate; Veritas must land at least
    // as close to the oracle.
    let generator = FccLike::new(4.0, 8.0);
    let higher = asset().reencoded(QualityLadder::paper_higher_qualities());
    let scenario = Scenario::new("mpc", PlayerConfig::paper_default(), higher);
    let e = engine();
    let mut oracle_bitrate = 0.0;
    let mut baseline_bitrate = 0.0;
    let mut veritas_bitrate = 0.0;
    let mut oracle_reb = 0.0;
    let mut baseline_reb = 0.0;
    let mut veritas_reb = 0.0;
    for seed in 0..3u64 {
        let truth = generator.generate(600.0, 700 + seed);
        let log = deployed(&truth);
        let cmp = e.compare(&log, &truth, &scenario);
        oracle_bitrate += cmp.oracle.avg_bitrate_mbps;
        baseline_bitrate += cmp.baseline.avg_bitrate_mbps;
        veritas_bitrate += cmp.veritas.median_of(|q| q.avg_bitrate_mbps);
        oracle_reb += cmp.oracle.rebuffer_ratio_percent;
        baseline_reb += cmp.baseline.rebuffer_ratio_percent;
        veritas_reb += cmp.veritas.median_of(|q| q.rebuffer_ratio_percent);
    }
    assert!(
        baseline_bitrate < oracle_bitrate,
        "Baseline bitrate {baseline_bitrate} should be conservative relative to the oracle {oracle_bitrate}"
    );
    let veritas_bitrate_gap = (veritas_bitrate - oracle_bitrate).abs();
    let baseline_bitrate_gap = (baseline_bitrate - oracle_bitrate).abs();
    assert!(
        veritas_bitrate_gap <= baseline_bitrate_gap + 0.1,
        "Veritas bitrate gap {veritas_bitrate_gap} should not exceed Baseline gap {baseline_bitrate_gap}"
    );
    let veritas_reb_gap = (veritas_reb - oracle_reb).abs();
    let baseline_reb_gap = (baseline_reb - oracle_reb).abs();
    assert!(
        veritas_reb_gap <= baseline_reb_gap + 2.0,
        "Veritas rebuffering gap {veritas_reb_gap}% should stay within 2 points of the Baseline gap {baseline_reb_gap}%"
    );
}

#[test]
fn replaying_the_deployed_setting_on_the_oracle_reproduces_the_session() {
    // Internal consistency: Setting B == Setting A replayed on the true
    // trace must reproduce the recorded session exactly (everything is
    // deterministic).
    let truth = FccLike::new(3.0, 8.0).generate(600.0, 900);
    let log = deployed(&truth);
    let scenario = Scenario::new("mpc", PlayerConfig::paper_default(), asset());
    let replay = scenario.replay_full(&veritas::oracle_trace(&truth, &log));
    assert_eq!(replay.records.len(), log.records.len());
    for (a, b) in replay.records.iter().zip(&log.records) {
        assert_eq!(a.quality, b.quality, "chunk {} quality differs", a.index);
        assert!((a.download_time_s - b.download_time_s).abs() < 1e-9);
    }
    assert!((replay.total_rebuffer_s - log.total_rebuffer_s).abs() < 1e-9);
}

#[test]
fn veritas_range_is_ordered_and_brackets_its_own_median() {
    let truth = FccLike::new(3.0, 8.0).generate(600.0, 950);
    let log = deployed(&truth);
    let scenario = Scenario::new("bola", PlayerConfig::paper_default(), asset());
    let pred = engine().veritas_predict(&log, &scenario);
    for metric in [
        |q: &veritas_player::QoeSummary| q.mean_ssim,
        |q: &veritas_player::QoeSummary| q.rebuffer_ratio_percent,
        |q: &veritas_player::QoeSummary| q.avg_bitrate_mbps,
    ] {
        let (lo, hi) = pred.range_of(metric);
        let med = pred.median_of(metric);
        assert!(lo <= hi + 1e-12);
        assert!(med >= lo - 1e-12 && med <= hi + 1e-12);
    }
}

#[test]
fn session_logs_round_trip_through_json_and_still_support_abduction() {
    let truth = FccLike::new(3.0, 8.0).generate(600.0, 980);
    let log = deployed(&truth);
    let json = log.to_json();
    let restored = SessionLog::from_json(&json).expect("valid JSON");
    assert_eq!(restored, log);
    let config = VeritasConfig::paper_default();
    let a = veritas::Abduction::infer(&log, &config);
    let b = veritas::Abduction::infer(&restored, &config);
    assert_eq!(a.viterbi_states(), b.viterbi_states());
}
