//! Cross-crate interventional test: Veritas's causal download-time
//! prediction versus the associational Fugu baseline on chunk sequences the
//! deployed ABR would never have generated (the paper's §4.4 setting).

use veritas::{InterventionalPredictor, VeritasConfig};
use veritas_abr::{Mpc, RandomAbr};
use veritas_fugu::{FuguConfig, FuguModel, TrainConfig};
use veritas_media::{QualityLadder, VbrParams, VideoAsset};
use veritas_player::{run_session, PlayerConfig};
use veritas_trace::generators::{FccLike, TraceGenerator};

fn asset() -> VideoAsset {
    VideoAsset::generate(
        QualityLadder::paper_default(),
        180.0,
        2.0,
        VbrParams::default(),
        13,
    )
}

#[test]
fn veritas_is_less_biased_than_fugu_on_randomized_sequences() {
    let player = PlayerConfig::paper_default();
    let generator = FccLike::new(1.0, 9.0);

    // Train Fugu on deployed-MPC logs (the associational training data).
    let training_logs: Vec<_> = (0..4u64)
        .map(|seed| {
            let truth = generator.generate(400.0, 100 + seed);
            let mut abr = Mpc::new();
            run_session(&asset(), &mut abr, &truth, &player)
        })
        .collect();
    let fugu = FuguModel::train_on_logs(
        &training_logs,
        FuguConfig {
            train: TrainConfig {
                epochs: 8,
                ..TrainConfig::default()
            },
            ..FuguConfig::default()
        },
    );

    // Test on random-bitrate sessions: sizes uncorrelated with conditions.
    let veritas = InterventionalPredictor::new(VeritasConfig::paper_default());
    let mut fugu_abs = 0.0;
    let mut veritas_abs = 0.0;
    let mut count = 0.0;
    for seed in 0..2u64 {
        let truth = generator.generate(400.0, 300 + seed);
        let mut abr = RandomAbr::new(seed);
        let log = run_session(&asset(), &mut abr, &truth, &player);
        for ((fp, fa), (vp, va)) in fugu
            .predict_over_log(&log)
            .into_iter()
            .zip(veritas.predict_over_log(&log))
        {
            assert!(
                (fa - va).abs() < 1e-12,
                "both predictors see the same ground truth"
            );
            fugu_abs += (fp - fa).abs();
            veritas_abs += (vp - va).abs();
            count += 1.0;
        }
    }
    let fugu_mae = fugu_abs / count;
    let veritas_mae = veritas_abs / count;
    assert!(
        veritas_mae < fugu_mae,
        "Veritas MAE {veritas_mae:.3} s should beat Fugu MAE {fugu_mae:.3} s on interventional sequences"
    );
}

#[test]
fn fugu_remains_competitive_on_its_own_training_distribution() {
    // Sanity check that the comparison above is not won by crippling Fugu:
    // on in-distribution (MPC-generated) sequences the associational model
    // is a reasonable predictor.
    let player = PlayerConfig::paper_default();
    let generator = FccLike::new(1.0, 9.0);
    let training_logs: Vec<_> = (0..4u64)
        .map(|seed| {
            let truth = generator.generate(400.0, 100 + seed);
            let mut abr = Mpc::new();
            run_session(&asset(), &mut abr, &truth, &player)
        })
        .collect();
    let fugu = FuguModel::train_on_logs(
        &training_logs,
        FuguConfig {
            train: TrainConfig {
                epochs: 8,
                ..TrainConfig::default()
            },
            ..FuguConfig::default()
        },
    );
    let truth = generator.generate(400.0, 150);
    let mut abr = Mpc::new();
    let in_dist_log = run_session(&asset(), &mut abr, &truth, &player);
    let preds = fugu.predict_over_log(&in_dist_log);
    let mae: f64 = preds.iter().map(|(p, a)| (p - a).abs()).sum::<f64>() / preds.len() as f64;
    assert!(
        mae < 1.5,
        "Fugu in-distribution MAE {mae:.3} s is unexpectedly poor (training MAE {:.3})",
        fugu.training_mae_s
    );
}
