//! Property-based tests (proptest) on cross-crate invariants: the emulator,
//! the TCP models, the quantizer, and the EHMM posterior machinery.
//!
//! Determinism: the vendored proptest harness (shims/proptest) derives every
//! case's RNG seed from (module path, test name, case index), and all direct
//! `StdRng` uses below seed from literals, so CI runs are fully reproducible
//! with no persisted shrink state.

use proptest::prelude::*;

use veritas_ehmm::{forward_backward, viterbi, EhmmSpec, EmissionTable, TransitionMatrix};
use veritas_media::{QualityLadder, VbrParams, VideoAsset};
use veritas_net::{estimate_throughput, LinkModel, TcpConnection, TcpInfo};
use veritas_player::{run_session, PlayerConfig};
use veritas_trace::generators::{FccLike, MarkovModulated, TraceGenerator};
use veritas_trace::{BandwidthTrace, Quantizer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The quantizer is idempotent and never moves a value by more than ε/2
    /// (within the grid) or outside the grid bounds.
    #[test]
    fn quantizer_is_idempotent_and_bounded(
        epsilon in 0.1f64..2.0,
        max in 2.0f64..20.0,
        value in -5.0f64..50.0,
    ) {
        let q = Quantizer::new(epsilon, max);
        let snapped = q.quantize(value);
        prop_assert_eq!(q.quantize(snapped), snapped);
        prop_assert!(snapped >= 0.0 && snapped <= q.max() + 1e-9);
        if value >= 0.0 && value <= q.value(q.num_states() - 1) {
            prop_assert!((snapped - value).abs() <= epsilon / 2.0 + 1e-9);
        }
    }

    /// Estimator f never predicts more than the intrinsic capacity for
    /// transfers larger than one BDP, and is monotone in capacity for large
    /// transfers.
    #[test]
    fn estimator_respects_capacity_bound(
        capacity in 0.25f64..20.0,
        cwnd in 4.0f64..400.0,
        gap in 0.0f64..10.0,
        size_kb in 200.0f64..4000.0,
    ) {
        let info = TcpInfo {
            cwnd_segments: cwnd,
            ssthresh_segments: cwnd.max(20.0),
            rto_s: 0.3,
            srtt_s: 0.08,
            min_rtt_s: 0.08,
            last_send_gap_s: gap,
        };
        let size = size_kb * 1000.0;
        let est = estimate_throughput(capacity, &info, size);
        prop_assert!(est.is_finite() && est >= 0.0);
        // 200 KB at 20 Mbps/80 ms is at least one BDP, so the cap applies.
        prop_assert!(est <= capacity + 1e-9);
        let est_higher = estimate_throughput(capacity * 1.5, &info, size);
        prop_assert!(est_higher >= est - 1e-9);
    }

    /// The ground-truth TCP connection model never beats the link capacity
    /// and always takes at least one RTT.
    #[test]
    fn tcp_connection_obeys_physics(
        capacity in 0.3f64..20.0,
        size_kb in 2.0f64..4000.0,
        start in 0.0f64..50.0,
    ) {
        let mut conn = TcpConnection::new(LinkModel::paper_default());
        let r = conn.download_constant(size_kb * 1000.0, start, capacity);
        prop_assert!(r.duration_s >= 0.08 - 1e-12);
        prop_assert!(r.throughput_mbps <= capacity * 1.05 + 1e-9);
        prop_assert!(r.rounds >= 1);
    }

    /// Session emulation invariants hold for arbitrary FCC-like traces and
    /// buffer sizes: logs are consistent, buffers bounded, rebuffering
    /// non-negative, and all chunks downloaded.
    #[test]
    fn session_emulation_invariants(
        seed in 0u64..500,
        buffer in 4.0f64..40.0,
        mean_low in 1.0f64..4.0,
    ) {
        let asset = VideoAsset::generate(
            QualityLadder::paper_default(),
            60.0,
            2.0,
            VbrParams::default(),
            seed,
        );
        let truth = FccLike::new(mean_low, mean_low + 4.0).generate(300.0, seed);
        let config = PlayerConfig::paper_default().with_buffer_capacity(buffer);
        let mut abr = veritas_abr::Mpc::new();
        let log = run_session(&asset, &mut abr, &truth, &config);
        prop_assert_eq!(log.records.len(), asset.num_chunks());
        prop_assert!(log.check_invariants().is_ok());
        prop_assert!(log.total_rebuffer_s >= 0.0);
        for r in &log.records {
            prop_assert!(r.buffer_at_request_s <= buffer + 1e-9);
            prop_assert!(r.quality < asset.num_qualities());
        }
    }

    /// Markov-modulated traces quantize onto their own grid and stay within
    /// bounds after resampling.
    #[test]
    fn generated_traces_survive_resampling(
        seed in 0u64..500,
        delta in 1.0f64..10.0,
    ) {
        let gen = MarkovModulated::new(0.5, 10.0, 0.5, 0.8);
        let trace = gen.generate(300.0, seed);
        let resampled = trace.resample(delta);
        prop_assert!(resampled.duration() >= trace.duration() - 1e-9);
        prop_assert!(resampled.min() >= 0.5 - 1e-9);
        prop_assert!(resampled.max() <= 10.0 + 1e-9);
        prop_assert!((resampled.mean() - trace.mean()).abs() < 0.75);
    }

    /// EHMM posterior marginals always normalize and the Viterbi path's score
    /// is at least the score of the marginal-MAP path.
    #[test]
    fn ehmm_posteriors_are_well_formed(
        seed in 0u64..1000,
        num_obs in 2usize..12,
        stay in 0.3f64..0.95,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let num_states = 5;
        let spec = EhmmSpec::with_uniform_initial(TransitionMatrix::tridiagonal(num_states, stay));
        let rows: Vec<Vec<f64>> = (0..num_obs)
            .map(|_| (0..num_states).map(|_| -rng.gen_range(0.0..6.0)).collect())
            .collect();
        let gaps: Vec<u32> = (0..num_obs).map(|n| if n == 0 { 0 } else { rng.gen_range(0..4) }).collect();
        let obs = EmissionTable::new(rows, gaps);
        let posteriors = forward_backward(&spec, &obs);
        for row in &posteriors.gamma {
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
        }
        let vit = viterbi(&spec, &obs);
        let map_path = posteriors.marginal_map_path();
        let vit_score = veritas_ehmm::path_log_score(&spec, &obs, &vit.path);
        let map_score = veritas_ehmm::path_log_score(&spec, &obs, &map_path);
        prop_assert!(vit_score >= map_score - 1e-9);
    }

    /// Baseline reconstruction never produces negative bandwidth and covers
    /// the session horizon.
    #[test]
    fn baseline_trace_is_well_formed(seed in 0u64..300) {
        let asset = VideoAsset::generate(
            QualityLadder::paper_default(),
            60.0,
            2.0,
            VbrParams::default(),
            seed,
        );
        let truth = FccLike::new(2.0, 8.0).generate(300.0, seed);
        let mut abr = veritas_abr::Bba::new();
        let log = run_session(&asset, &mut abr, &truth, &PlayerConfig::paper_default());
        let baseline = veritas::baseline_trace(&log, 5.0);
        prop_assert!(baseline.min() >= 0.0);
        prop_assert!(baseline.duration() >= log.records.last().unwrap().end_time_s - 5.0);
    }

    /// Mean bandwidth over a window is always between the min and max of the
    /// trace (a sanity property of the piecewise-constant integrator).
    #[test]
    fn windowed_mean_is_bounded(
        seed in 0u64..500,
        start in 0.0f64..200.0,
        len in 0.5f64..100.0,
    ) {
        let trace: BandwidthTrace = FccLike::new(1.0, 9.0).generate(300.0, seed);
        let mean = trace.mean_bandwidth_over(start, start + len);
        prop_assert!(mean >= trace.min() - 1e-9);
        prop_assert!(mean <= trace.max() + 1e-9);
    }
}
